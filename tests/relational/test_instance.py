"""Tests for ground relations, ground instances and master data."""

import pytest

from repro.exceptions import ArityError, SchemaError, UnknownRelationError
from repro.relational.instance import (
    GroundInstance,
    Relation,
    empty_instance,
    instance,
)
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import database_schema, schema


@pytest.fixture
def db_schema():
    return database_schema(schema("R", "A", "B"), schema("S", "C"))


class TestRelation:
    def test_rows_deduplicated(self):
        rel = Relation(schema("R", "A"), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_membership(self):
        rel = Relation(schema("R", "A", "B"), [(1, 2)])
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_arity_enforced(self):
        with pytest.raises(ArityError):
            Relation(schema("R", "A", "B"), [(1,)])

    def test_add_remove_are_functional(self):
        rel = Relation(schema("R", "A"), [(1,)])
        bigger = rel.add((2,))
        assert len(rel) == 1
        assert len(bigger) == 2
        assert len(bigger.remove((1,), (2,))) == 0

    def test_union_difference_intersection(self):
        r = schema("R", "A")
        a = Relation(r, [(1,), (2,)])
        b = Relation(r, [(2,), (3,)])
        assert a.union(b).rows == {(1,), (2,), (3,)}
        assert a.difference(b).rows == {(1,)}
        assert a.intersection(b).rows == {(2,)}

    def test_schema_mismatch_rejected(self):
        a = Relation(schema("R", "A"), [(1,)])
        b = Relation(schema("S", "A"), [(1,)])
        with pytest.raises(SchemaError):
            a.union(b)

    def test_subset_relations(self):
        r = schema("R", "A")
        small = Relation(r, [(1,)])
        big = Relation(r, [(1,), (2,)])
        assert small.issubset(big)
        assert small.is_proper_subset(big)
        assert not big.is_proper_subset(big)

    def test_constants(self):
        rel = Relation(schema("R", "A", "B"), [(1, "x")])
        assert rel.constants() == {1, "x"}

    def test_iteration_deterministic(self):
        rel = Relation(schema("R", "A"), [(2,), (1,)])
        assert list(rel) == list(rel)

    def test_equality_and_hash(self):
        r = schema("R", "A")
        assert Relation(r, [(1,)]) == Relation(r, [(1,)])
        assert hash(Relation(r, [(1,)])) == hash(Relation(r, [(1,)]))

    def test_is_empty(self):
        assert Relation(schema("R", "A")).is_empty()


class TestGroundInstance:
    def test_construction(self, db_schema):
        inst = instance(db_schema, R=[(1, 2)], S=[(3,)])
        assert inst.size == 2
        assert (1, 2) in inst["R"]

    def test_missing_relations_default_empty(self, db_schema):
        inst = instance(db_schema, R=[(1, 2)])
        assert inst["S"].is_empty()

    def test_unknown_relation_rejected(self, db_schema):
        with pytest.raises(UnknownRelationError):
            GroundInstance(db_schema, {"T": [(1,)]})
        inst = instance(db_schema)
        with pytest.raises(UnknownRelationError):
            inst.relation("T")

    def test_empty_instance(self, db_schema):
        inst = empty_instance(db_schema)
        assert inst.is_empty()
        assert inst.size == 0

    def test_with_tuple_is_functional(self, db_schema):
        inst = empty_instance(db_schema)
        bigger = inst.with_tuple("R", (1, 2))
        assert inst.is_empty()
        assert bigger.size == 1

    def test_with_tuples_multiple_relations(self, db_schema):
        inst = empty_instance(db_schema).with_tuples({"R": [(1, 2)], "S": [(3,)]})
        assert inst.size == 2

    def test_with_tuples_unknown_relation(self, db_schema):
        with pytest.raises(UnknownRelationError):
            empty_instance(db_schema).with_tuples({"T": [(1,)]})

    def test_without_tuple(self, db_schema):
        inst = instance(db_schema, R=[(1, 2), (3, 4)])
        smaller = inst.without_tuple("R", (1, 2))
        assert smaller.size == 1
        assert (3, 4) in smaller["R"]

    def test_union(self, db_schema):
        a = instance(db_schema, R=[(1, 2)])
        b = instance(db_schema, R=[(3, 4)], S=[(5,)])
        u = a.union(b)
        assert u.size == 3

    def test_extension_order(self, db_schema):
        small = instance(db_schema, R=[(1, 2)])
        big = instance(db_schema, R=[(1, 2)], S=[(3,)])
        assert small.issubset(big)
        assert big.extends(small)
        assert not small.extends(small)
        assert not small.extends(big)

    def test_constants(self, db_schema):
        inst = instance(db_schema, R=[(1, "a")], S=[("b",)])
        assert inst.constants() == {1, "a", "b"}

    def test_tuples_iteration(self, db_schema):
        inst = instance(db_schema, R=[(1, 2)], S=[(3,)])
        assert set(inst.tuples()) == {("R", (1, 2)), ("S", (3,))}

    def test_proper_subinstances(self, db_schema):
        inst = instance(db_schema, R=[(1, 2)], S=[(3,)])
        subs = list(inst.proper_subinstances())
        assert len(subs) == 2
        assert all(sub.size == 1 for sub in subs)

    def test_equality_and_hash(self, db_schema):
        a = instance(db_schema, R=[(1, 2)])
        b = instance(db_schema, R=[(1, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_different_schema_comparison_rejected(self, db_schema):
        other = database_schema(schema("R", "A", "B"))
        with pytest.raises(SchemaError):
            instance(db_schema).issubset(instance(other))

    def test_relation_object_reuse(self, db_schema):
        rel = Relation(db_schema["R"], [(1, 2)])
        inst = GroundInstance(db_schema, {"R": rel})
        assert inst["R"] == rel

    def test_relation_object_schema_mismatch(self, db_schema):
        rel = Relation(schema("R", "A"), [(1,)])
        with pytest.raises(SchemaError):
            GroundInstance(db_schema, {"R": rel})


class TestMasterData:
    def test_wraps_instance(self, db_schema):
        md = MasterData(db_schema, {"R": [(1, 2)]})
        assert md.size == 1
        assert (1, 2) in md["R"]
        assert md.schema == db_schema
        assert "R" in md

    def test_empty_master(self, db_schema):
        md = empty_master(db_schema)
        assert md.size == 0

    def test_from_instance(self, db_schema):
        inst = instance(db_schema, S=[(9,)])
        md = MasterData.from_instance(inst)
        assert md.instance == inst
        assert md.constants() == {9}

    def test_equality(self, db_schema):
        assert MasterData(db_schema, {"R": [(1, 2)]}) == MasterData(
            db_schema, {"R": [(1, 2)]}
        )
        assert empty_master(db_schema) != MasterData(db_schema, {"R": [(1, 2)]})
