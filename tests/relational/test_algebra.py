"""Tests for the relational algebra helpers."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.algebra import (
    difference,
    from_rows,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    select_attr_eq,
    select_attr_neq,
    select_eq,
    select_neq,
    union,
)
from repro.relational.instance import Relation
from repro.relational.schema import schema


@pytest.fixture
def people():
    return from_rows(
        "people",
        ["name", "city"],
        [("john", "EDI"), ("mary", "LON"), ("jack", "EDI")],
    )


class TestSelect:
    def test_select_predicate(self, people):
        result = select(people, lambda row: row[0].startswith("j"))
        assert len(result) == 2

    def test_select_eq(self, people):
        assert len(select_eq(people, "city", "EDI")) == 2

    def test_select_neq(self, people):
        assert len(select_neq(people, "city", "EDI")) == 1

    def test_select_attr_eq_and_neq(self):
        rel = from_rows("R", ["A", "B"], [(1, 1), (1, 2)])
        assert select_attr_eq(rel, "A", "B").rows == {(1, 1)}
        assert select_attr_neq(rel, "A", "B").rows == {(1, 2)}


class TestProjectRename:
    def test_project_removes_duplicates(self, people):
        cities = project(people, ["city"])
        assert cities.rows == {("EDI",), ("LON",)}

    def test_project_reorders(self, people):
        flipped = project(people, ["city", "name"])
        assert ("EDI", "john") in flipped

    def test_rename_relation(self, people):
        assert rename(people, "persons").name == "persons"

    def test_rename_attributes(self, people):
        renamed = rename(people, "P", ["n", "c"])
        assert renamed.schema.attribute_names == ("n", "c")

    def test_rename_arity_mismatch(self, people):
        with pytest.raises(SchemaError):
            rename(people, "P", ["n"])


class TestSetOperations:
    def test_union_difference_intersection(self):
        a = from_rows("R", ["A"], [(1,), (2,)])
        b = from_rows("S", ["A"], [(2,), (3,)])
        assert union(a, b).rows == {(1,), (2,), (3,)}
        assert difference(a, b).rows == {(1,)}
        assert intersection(a, b).rows == {(2,)}

    def test_arity_mismatch_rejected(self):
        a = from_rows("R", ["A"], [(1,)])
        b = from_rows("S", ["A", "B"], [(1, 2)])
        with pytest.raises(SchemaError):
            union(a, b)


class TestProductsAndJoins:
    def test_product_sizes(self):
        a = from_rows("R", ["A"], [(1,), (2,)])
        b = from_rows("S", ["B"], [("x",), ("y",), ("z",)])
        assert len(product(a, b)) == 6

    def test_product_disambiguates_shared_names(self):
        a = from_rows("R", ["A"], [(1,)])
        b = from_rows("S", ["A"], [(2,)])
        prod = product(a, b)
        assert prod.schema.attribute_names == ("A", "S.A")

    def test_natural_join(self):
        a = from_rows("R", ["A", "B"], [(1, "x"), (2, "y")])
        b = from_rows("S", ["B", "C"], [("x", 10), ("z", 20)])
        joined = natural_join(a, b)
        assert joined.rows == {(1, "x", 10)}
        assert joined.schema.attribute_names == ("A", "B", "C")

    def test_join_without_shared_attributes_is_product(self):
        a = from_rows("R", ["A"], [(1,), (2,)])
        b = from_rows("S", ["B"], [("x",)])
        assert len(natural_join(a, b)) == 2

    def test_empty_relation_behaviour(self):
        a = Relation(schema("R", "A"))
        b = from_rows("S", ["B"], [(1,)])
        assert len(product(a, b)) == 0
        assert len(natural_join(a, b)) == 0
