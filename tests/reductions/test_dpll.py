"""Tests for the DPLL solver and its wiring into ``CNFFormula``.

The solver is cross-validated against an independent exhaustive check on
hypothesis-generated random 3CNFs (satisfiability, model validity and model
counts under enumeration) and exercised on structured instances — implication
chains, pigeonhole formulas — that require real propagation, learning and
restarts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ReductionError
from repro.reductions.dpll import (
    DPLLSolver,
    brute_force_satisfiable,
    solve_cnf,
)
from repro.reductions.sat import CNFFormula, random_3cnf

import random


# ---------------------------------------------------------------------------
# strategy: random CNF clause lists over a small variable range
# ---------------------------------------------------------------------------
_LITERALS = st.integers(min_value=1, max_value=8).flatmap(
    lambda v: st.sampled_from([v, -v])
)
_CLAUSES = st.lists(
    st.lists(_LITERALS, min_size=1, max_size=3).map(tuple),
    min_size=1,
    max_size=24,
)


def _satisfies(clauses, model) -> bool:
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause) for clause in clauses
    )


@given(_CLAUSES)
@settings(max_examples=150, deadline=None)
def test_dpll_agrees_with_brute_force(clauses):
    model = solve_cnf(clauses)
    expected = brute_force_satisfiable(clauses)
    assert (model is not None) == expected
    if model is not None:
        assert _satisfies(clauses, model)


@given(_CLAUSES)
@settings(max_examples=60, deadline=None)
def test_enumeration_matches_brute_force_model_count(clauses):
    import itertools

    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    expected = 0
    for values in itertools.product((False, True), repeat=len(variables)):
        if _satisfies(clauses, dict(zip(variables, values))):
            expected += 1
    seen = set()
    for model in DPLLSolver(clauses).enumerate_models():
        key = tuple(sorted(model.items()))
        assert key not in seen, "enumeration yielded a duplicate model"
        seen.add(key)
        assert _satisfies(clauses, model)
    assert len(seen) == expected


@given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_cnf_formula_dpll_agrees_with_brute_force(variable_count, clause_count):
    rng = random.Random(variable_count * 1000 + clause_count)
    formula = random_3cnf(list(range(1, variable_count + 1)), clause_count, rng)
    assert formula.is_satisfiable() == formula.is_satisfiable_brute_force()


# ---------------------------------------------------------------------------
# assumption soundness: one solver, interleaved clause adds and assumption
# flips, in lockstep with an exhaustive oracle.  This is the contract the
# incremental SAT session rests on — clauses learned (first-UIP) under one
# set of assumptions must stay sound under every later set.
# ---------------------------------------------------------------------------
_ASSUMPTIONS = st.lists(_LITERALS, min_size=0, max_size=3).map(
    lambda lits: tuple({abs(lit): lit for lit in lits}.values())
)
_BATCHES = st.lists(
    st.tuples(st.lists(st.lists(_LITERALS, min_size=1, max_size=3), max_size=6), _ASSUMPTIONS),
    min_size=1,
    max_size=4,
)


@given(_BATCHES, st.sampled_from(["first_uip", "decision"]))
@settings(max_examples=120, deadline=None)
def test_assumption_soundness_across_interleaved_adds(batches, learning):
    solver = DPLLSolver(learning=learning)
    accumulated: list[list[int]] = []
    for clauses, assumptions in batches:
        for clause in clauses:
            solver.add_clause(clause)
            accumulated.append(list(clause))
        model = solver.solve(assumptions)
        expected = brute_force_satisfiable(
            accumulated + [[lit] for lit in assumptions]
        )
        assert (model is not None) == expected
        if model is not None:
            assert _satisfies(accumulated, model)
            assert all(model[abs(lit)] == (lit > 0) for lit in assumptions)


@given(_CLAUSES)
@settings(max_examples=100, deadline=None)
def test_first_uip_and_decision_learning_agree(clauses):
    first_uip = DPLLSolver(clauses, learning="first_uip").solve()
    decision = DPLLSolver(clauses, learning="decision").solve()
    assert (first_uip is None) == (decision is None)
    if first_uip is not None:
        assert _satisfies(clauses, first_uip)
        assert _satisfies(clauses, decision)


def test_unknown_learning_scheme_rejected():
    with pytest.raises(ReductionError):
        DPLLSolver(learning="second_uip")


@given(_CLAUSES, st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_projected_enumeration_tolerates_unseen_variables(clauses, projection):
    # Projected variables the solver never assigned (absent from every clause)
    # are don't-cares: they contribute no blocking literal, so a projection
    # full of unseen selectors must not crash (the pre-fix code KeyErrored)
    # and each distinct restriction to the *seen* projected variables appears
    # exactly once.
    import itertools

    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    seen_projection = [var for var in projection if var in variables]
    expected_restrictions = set()
    for values in itertools.product((False, True), repeat=len(variables)):
        full = dict(zip(variables, values))
        if _satisfies(clauses, full):
            expected_restrictions.add(
                tuple((var, full[var]) for var in sorted(set(seen_projection)))
            )
    models = list(DPLLSolver(clauses).enumerate_models(project_onto=projection))
    restrictions = set()
    for model in models:
        assert _satisfies(clauses, model)
        key = tuple(
            (var, model[var]) for var in sorted(set(seen_projection))
        )
        assert key not in restrictions, "projection yielded twice"
        restrictions.add(key)
    assert restrictions == expected_restrictions


# ---------------------------------------------------------------------------
# structured instances
# ---------------------------------------------------------------------------
class TestSolverBasics:
    def test_empty_clause_is_unsat(self):
        solver = DPLLSolver()
        solver.add_clause([])
        assert solver.solve() is None

    def test_unit_conflict(self):
        assert solve_cnf([[1], [-1]]) is None

    def test_tautology_registers_variables(self):
        solver = DPLLSolver([[1, -1]])
        model = solver.solve()
        assert model is not None and set(model) == {1}

    def test_duplicate_literals_merged(self):
        assert solve_cnf([[1, 1, 1]]) == {1: True}

    def test_implication_chain_propagates(self):
        # x1 ∧ (x1→x2) ∧ ... ∧ (x_{n-1}→x_n): solved by propagation alone.
        n = 200
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)]
        solver = DPLLSolver(clauses)
        model = solver.solve()
        assert model == {i: True for i in range(1, n + 1)}
        assert solver.stats.decisions == 0

    def test_chain_with_contradiction_is_unsat_without_decisions(self):
        n = 50
        clauses = [[1]] + [[-i, i + 1] for i in range(1, n)] + [[-n]]
        solver = DPLLSolver(clauses)
        assert solver.solve() is None
        assert solver.stats.decisions == 0

    def test_zero_literal_rejected(self):
        with pytest.raises(ReductionError):
            DPLLSolver([[0]])

    def test_incremental_blocking(self):
        solver = DPLLSolver([[1, 2]])
        models = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            key = (model[1], model[2])
            assert key not in models
            models.add(key)
            solver.add_clause([-1 if model[1] else 1, -2 if model[2] else 2])
        assert models == {(True, True), (True, False), (False, True)}

    def test_projected_enumeration(self):
        # x2 is forced; projecting onto x1 yields exactly two models.
        solver = DPLLSolver([[2], [1, -1]])
        models = list(solver.enumerate_models(project_onto=[1]))
        assert sorted(model[1] for model in models) == [False, True]


def _pigeonhole(pigeons: int, holes: int) -> list[list[int]]:
    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestSolverSearch:
    def test_pigeonhole_unsat(self):
        solver = DPLLSolver(_pigeonhole(6, 5))
        assert solver.solve() is None
        assert solver.stats.conflicts > 0
        assert solver.stats.learned_clauses > 0

    def test_pigeonhole_sat(self):
        solver = DPLLSolver(_pigeonhole(5, 5))
        model = solver.solve()
        assert model is not None
        assert _satisfies(_pigeonhole(5, 5), model)

    def test_restarts_fire_on_hard_instances(self):
        solver = DPLLSolver(_pigeonhole(7, 6))
        assert solver.solve() is None
        assert solver.stats.restarts > 0

    def test_brute_force_refuses_large_instances(self):
        clauses = [[v] for v in range(1, 40)]
        with pytest.raises(ReductionError):
            brute_force_satisfiable(clauses)

    def test_cnf_formula_brute_force_bound(self):
        formula = CNFFormula([[v] for v in range(1, 14)])
        with pytest.raises(ReductionError):
            formula.is_satisfiable_brute_force()
        assert formula.is_satisfiable()

    def test_satisfying_assignment_is_total_and_valid(self):
        formula = CNFFormula([(1, 2), (-1, 3), (-2, -3)])
        assignment = formula.satisfying_assignment()
        assert assignment is not None
        assert set(assignment) == formula.variables()
        assert formula.evaluate(assignment)

    def test_satisfying_assignment_none_when_unsat(self):
        formula = CNFFormula([(1,), (-1,)])
        assert formula.satisfying_assignment() is None
