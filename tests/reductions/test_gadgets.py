"""Tests for the Figure 2 gadget relations and the CQ encoding of 3CNF formulas."""

import itertools

import pytest

from repro.exceptions import ReductionError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate_cq
from repro.queries.terms import Variable
from repro.reductions.gadgets import (
    R_AND,
    R_BOOL,
    R_NOT,
    R_OR,
    and_relation_schema,
    and_rows,
    assignment_atoms,
    bool_relation_schema,
    bool_rows,
    encode_formula,
    gadget_relation,
    gadget_rows,
    master_gadget_rows,
    not_relation_schema,
    not_rows,
    or_relation_schema,
    or_rows,
)
from repro.reductions.sat import CNFFormula
from repro.relational.instance import GroundInstance
from repro.relational.schema import DatabaseSchema


@pytest.fixture
def gadget_instance():
    schema = DatabaseSchema(
        [
            bool_relation_schema(R_BOOL),
            or_relation_schema(R_OR),
            and_relation_schema(R_AND),
            not_relation_schema(R_NOT),
        ]
    )
    return GroundInstance(schema, gadget_rows())


class TestGadgetRelations:
    def test_figure2_row_contents(self):
        assert set(bool_rows()) == {(0,), (1,)}
        assert set(or_rows()) == {(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 1)}
        assert set(and_rows()) == {(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)}
        assert set(not_rows()) == {(0, 1), (1, 0)}

    def test_gadget_relation_builder(self):
        rel = gadget_relation("I_or", "or")
        assert rel.name == "I_or"
        assert len(rel) == 4
        with pytest.raises(ReductionError):
            gadget_relation("X", "xor")

    def test_master_copy_contains_empty_relation(self):
        rows = master_gadget_rows()
        assert rows["Rm_empty"] == []
        assert set(rows["Rm_or"]) == set(or_rows())

    def test_truth_tables_are_functions(self):
        for rows in (or_rows(), and_rows()):
            mapping = {}
            for a, b, result in rows:
                assert mapping.setdefault((a, b), result) == result


class TestFormulaEncoding:
    @pytest.mark.parametrize(
        "clauses",
        [
            [(1,)],
            [(-1,)],
            [(1, 2)],
            [(1, -2), (-1, 2)],
            [(1, 2, 3), (-1, -2, -3)],
            [(1, 2, -3), (-1, 3, 2), (3, 3, 1)],
        ],
    )
    def test_encoding_matches_semantics(self, gadget_instance, clauses):
        formula = CNFFormula(clauses)
        variables = sorted(formula.variables())
        terms = {v: Variable(f"p{v}") for v in variables}
        encoding = encode_formula(formula, terms)
        # Build a query returning (p1, ..., pk, truth value) over the gadgets.
        query = ConjunctiveQuery(
            head=tuple(terms[v] for v in variables) + (encoding.output,),
            atoms=assignment_atoms(terms) + encoding.atoms,
            name="eval",
        )
        answers = evaluate_cq(query, gadget_instance)
        # Every Boolean assignment appears exactly once with the correct value.
        assert len(answers) == 2 ** len(variables)
        for values in itertools.product((0, 1), repeat=len(variables)):
            assignment = {v: bool(val) for v, val in zip(variables, values)}
            expected = int(formula.evaluate(assignment))
            assert values + (expected,) in answers

    def test_encoding_requires_all_variables(self):
        formula = CNFFormula([(1, 2)])
        with pytest.raises(ReductionError):
            encode_formula(formula, {1: Variable("p1")})

    def test_assignment_atoms_shape(self):
        terms = {1: Variable("a"), 2: Variable("b")}
        atoms = assignment_atoms(terms)
        assert len(atoms) == 2
        assert all(a.relation == R_BOOL for a in atoms)
