"""Tests for the propositional structures and the brute-force QBF solver."""

import pytest

from repro.exceptions import ReductionError
from repro.reductions.sat import (
    Clause,
    CNFFormula,
    QuantifiedFormula,
    Quantifier,
    exists_forall_exists_3sat,
    forall_exists_3sat,
    random_3cnf,
    random_exists_forall_exists_instance,
    random_forall_exists_instance,
)


class TestClausesAndCNF:
    def test_clause_evaluation(self):
        clause = Clause((1, -2))
        assert clause.evaluate({1: True, 2: True})
        assert clause.evaluate({1: False, 2: False})
        assert not clause.evaluate({1: False, 2: True})

    def test_clause_variables(self):
        assert Clause((1, -2, 3)).variables() == {1, 2, 3}

    def test_empty_clause_rejected(self):
        with pytest.raises(ReductionError):
            Clause(())

    def test_zero_literal_rejected(self):
        with pytest.raises(ReductionError):
            Clause((1, 0))

    def test_missing_assignment_rejected(self):
        with pytest.raises(ReductionError):
            Clause((1,)).evaluate({})

    def test_cnf_evaluation_and_satisfiability(self):
        formula = CNFFormula([(1, 2), (-1, 2), (1, -2)])
        assert formula.evaluate({1: True, 2: True})
        assert not formula.evaluate({1: False, 2: False})
        assert formula.is_satisfiable()

    def test_unsatisfiable_cnf(self):
        formula = CNFFormula([(1,), (-1,)])
        assert not formula.is_satisfiable()

    def test_empty_cnf_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula([])


class TestQuantifiedFormulas:
    def test_forall_exists_true(self):
        # ∀x1 ∃x2 (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): pick x2 = ¬x1.
        formula = forall_exists_3sat([1], [2], [(1, 2), (-1, -2)])
        assert formula.is_true()

    def test_forall_exists_false(self):
        # ∀x1 ∃x2 (x1): fails for x1 = false regardless of x2.
        formula = forall_exists_3sat([1], [2], [(1,)])
        assert not formula.is_true()

    def test_exists_forall_exists(self):
        # ∃x1 ∀x2 ∃x3 (x1 ∨ x3) ∧ (¬x2 ∨ x3): choose x1 arbitrarily, x3 = true.
        formula = exists_forall_exists_3sat([1], [2], [3], [(1, 3), (-2, 3)])
        assert formula.is_true()

    def test_exists_forall_exists_false(self):
        # ∃x1 ∀x2 (x1 ∧ x2 is required): fails because x2 = false kills it.
        formula = exists_forall_exists_3sat([1], [2], [3], [(1,), (2,)])
        assert not formula.is_true()

    def test_free_variables_treated_as_innermost_existential(self):
        formula = QuantifiedFormula(
            prefix=[(Quantifier.FORALL, [1])], matrix=CNFFormula([(1, 2)])
        )
        # For x1 = false, the free variable x2 may be chosen true.
        assert formula.is_true()

    def test_repr_shows_prefix(self):
        formula = forall_exists_3sat([1], [2], [(1, 2)])
        assert "∀" in repr(formula) and "∃" in repr(formula)


class TestRandomInstances:
    def test_random_3cnf_shape(self):
        import random

        formula = random_3cnf([1, 2, 3], 5, random.Random(0))
        assert len(formula.clauses) == 5
        assert formula.variables() <= {1, 2, 3}
        assert all(len(clause.literals) == 3 for clause in formula.clauses)

    def test_random_3cnf_requires_variables(self):
        import random

        with pytest.raises(ReductionError):
            random_3cnf([], 1, random.Random(0))

    def test_random_generators_are_deterministic(self):
        a = random_forall_exists_instance(2, 2, 3, seed=7)
        b = random_forall_exists_instance(2, 2, 3, seed=7)
        assert repr(a) == repr(b)
        c = random_exists_forall_exists_instance(1, 1, 1, 2, seed=3)
        d = random_exists_forall_exists_instance(1, 1, 1, 2, seed=3)
        assert repr(c) == repr(d)
        assert c.is_true() == d.is_true()

    def test_random_prefix_structure(self):
        formula = random_exists_forall_exists_instance(1, 2, 1, 2, seed=1)
        assert [block.quantifier for block in formula.prefix] == [
            Quantifier.EXISTS,
            Quantifier.FORALL,
            Quantifier.EXISTS,
        ]
