"""End-to-end validation of the lower-bound reductions against the deciders.

Each reduction is instantiated on a battery of small quantified formulas; the
claimed equivalence between the source problem (decided by brute force) and
the target problem (decided by the library) is checked on every instance.
"""

import pytest

from repro.completeness.consistency import is_consistent, is_extensible
from repro.completeness.weak import is_weakly_complete
from repro.constraints.integrity import fd_implies
from repro.constraints.dependencies import fd
from repro.ctables.cinstance import CInstance
from repro.reductions.consistency_reduction import build_consistency_reduction
from repro.reductions.implication import (
    build_implication_reduction,
    rcdp_with_dependencies_bounded,
)
from repro.reductions.rcdp_weak_reduction import build_weak_rcdp_reduction
from repro.reductions.sat import (
    exists_forall_exists_3sat,
    forall_exists_3sat,
)
from repro.relational.schema import database_schema, schema


# A battery of ∀X ∃Y ψ instances with known truth values.
FORALL_EXISTS_CASES = [
    # (universal, existential, clauses)
    ([1], [2], [(1, 2), (-1, -2)]),      # true: y = ¬x
    ([1], [2], [(1,)]),                   # false: fails at x = 0
    ([1], [2], [(1, 2)]),                 # true: y = 1 works
    ([1, 2], [3], [(1, 3), (2, 3)]),      # true: y = 1 works
    ([1], [2], [(-1,), (1, 2)]),          # false: fails at x = 1
]

# A battery of ∃X ∀Y ∃Z ψ instances with known truth values.
EXISTS_FORALL_EXISTS_CASES = [
    ([1], [2], [3], [(1, 3), (-2, 3)]),   # true
    ([1], [2], [3], [(1,), (2,)]),        # false: clause (2) fails at y = 0
    ([1], [2], [3], [(2, 3), (-3, 2)]),   # false: at y = 0 both need z contradiction
    ([1], [2], [3], [(1, 2, 3)]),         # true: x = 1 satisfies every clause
]


class TestConsistencyReduction:
    """Proposition 3.3: φ is false  ⟺  Mod(T, Dm, V) ≠ ∅."""

    @pytest.mark.parametrize("universal,existential,clauses", FORALL_EXISTS_CASES)
    def test_consistency_equivalence(self, universal, existential, clauses):
        formula = forall_exists_3sat(universal, existential, clauses)
        reduction = build_consistency_reduction(formula)
        consistent = is_consistent(
            reduction.cinstance, reduction.master, reduction.constraints
        )
        assert consistent == (not formula.is_true())

    @pytest.mark.parametrize("universal,existential,clauses", FORALL_EXISTS_CASES)
    def test_extensibility_equivalence(self, universal, existential, clauses):
        formula = forall_exists_3sat(universal, existential, clauses)
        reduction = build_consistency_reduction(formula)
        extensible = is_extensible(
            reduction.empty_rx_instance, reduction.master, reduction.constraints
        )
        assert extensible == (not formula.is_true())

    def test_reduction_structure(self):
        formula = forall_exists_3sat([1], [2], [(1, 2)])
        reduction = build_consistency_reduction(formula)
        assert "R_X" in reduction.schema
        assert reduction.cinstance["R_X"].variables()
        assert reduction.empty_rx_instance["R_X"].is_empty()
        # The gadget tables of the c-instance are ground.
        assert reduction.cinstance["R_or"].is_ground()

    def test_rejects_wrong_prefix(self):
        formula = exists_forall_exists_3sat([1], [2], [3], [(1,)])
        from repro.exceptions import ReductionError

        with pytest.raises(ReductionError):
            build_consistency_reduction(formula)


class TestWeakRCDPReduction:
    """Theorem 5.1(3): φ is true  ⟺  I is NOT weakly complete for Q."""

    @pytest.mark.parametrize("outer,universal,inner,clauses", EXISTS_FORALL_EXISTS_CASES)
    def test_weak_rcdp_equivalence(self, outer, universal, inner, clauses):
        formula = exists_forall_exists_3sat(outer, universal, inner, clauses)
        reduction = build_weak_rcdp_reduction(formula)
        weakly_complete = is_weakly_complete(
            CInstance.from_ground_instance(reduction.instance),
            reduction.query,
            reduction.master,
            reduction.constraints,
        )
        assert weakly_complete == (not formula.is_true())

    def test_reduction_structure(self):
        formula = exists_forall_exists_3sat([1], [2], [3], [(1, 3)])
        reduction = build_weak_rcdp_reduction(formula)
        assert reduction.instance["R_Y"].is_empty()
        assert reduction.query.arity == 1
        assert not reduction.query.is_inequality_free() or True  # query may use ≠ only in CCs

    def test_rejects_wrong_prefix(self):
        from repro.exceptions import ReductionError

        formula = forall_exists_3sat([1], [2], [(1,)])
        with pytest.raises(ReductionError):
            build_weak_rcdp_reduction(formula)


class TestImplicationReduction:
    """Proposition 3.1 on its decidable FD-only fragment."""

    @pytest.fixture
    def r_schema(self):
        return database_schema(schema("R", "A", "B", "C"))

    def test_implied_fd_gives_complete_empty_db(self, r_schema):
        # Θ = {A→B, B→C} implies A→C: the empty instance is complete for the
        # violation query relative to (Dm, V, Θ).
        theta = [fd("R", "A", "B"), fd("R", "B", "C")]
        candidate = fd("R", "A", "C")
        assert fd_implies(theta, candidate)
        reduction = build_implication_reduction(r_schema, theta, candidate)
        assert rcdp_with_dependencies_bounded(
            reduction.empty_db,
            reduction.query,
            reduction.master,
            reduction.constraints,
            theta,
            max_new_tuples=2,
        )

    def test_non_implied_fd_gives_incomplete_empty_db(self, r_schema):
        # Θ = {A→B} does not imply A→C: a two-tuple extension witnesses a
        # violation of A→C while satisfying Θ, so the empty instance is not
        # complete.
        theta = [fd("R", "A", "B")]
        candidate = fd("R", "A", "C")
        assert not fd_implies(theta, candidate)
        reduction = build_implication_reduction(r_schema, theta, candidate)
        assert not rcdp_with_dependencies_bounded(
            reduction.empty_db,
            reduction.query,
            reduction.master,
            reduction.constraints,
            theta,
            max_new_tuples=2,
        )

    def test_reduction_query_detects_violations(self, r_schema):
        from repro.queries.evaluation import evaluate
        from repro.relational.instance import instance

        candidate = fd("R", "A", "C")
        reduction = build_implication_reduction(r_schema, [], candidate)
        violating = instance(r_schema, R=[(1, 1, 1), (1, 2, 2)])
        satisfying = instance(r_schema, R=[(1, 1, 1), (2, 2, 2)])
        assert evaluate(reduction.query, violating)
        assert not evaluate(reduction.query, satisfying)

    def test_multi_attribute_rhs_rejected(self, r_schema):
        from repro.exceptions import ReductionError

        with pytest.raises(ReductionError):
            build_implication_reduction(r_schema, [], fd("R", "A", ["B", "C"]))
