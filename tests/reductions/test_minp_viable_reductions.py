"""Tests for the Theorem 4.8 (MINPˢ) and Theorem 6.1 (RCDPᵛ) constructions.

Each reduction is instantiated on small quantified formulas with known truth
values; the paper's equivalence is then checked with the library's deciders:

* Theorem 4.8 — ``φ`` is false iff ``T`` is a minimal strongly complete
  c-instance for ``Q``;
* Theorem 6.1 — ``φ`` is true iff ``T`` is viably complete for ``Q``.
"""

import pytest

from repro.completeness.minp import is_minimal_strongly_complete
from repro.completeness.strong import is_strongly_complete
from repro.completeness.viable import is_viably_complete
from repro.exceptions import ReductionError
from repro.reductions.minp_strong_reduction import build_strong_minp_reduction
from repro.reductions.rcdp_viable_reduction import build_viable_rcdp_reduction
from repro.reductions.sat import (
    QuantifiedFormula,
    Quantifier,
    exists_forall_exists_3sat,
    forall_exists_3sat,
)

# φ_true: ∃x ∀y ∃z ((x ∨ y ∨ z) ∧ (x ∨ ¬y ∨ ¬z)) — pick x = 1.
TRUE_FORMULA = exists_forall_exists_3sat([1], [2], [3], [(1, 2, 3), (1, -2, -3)])
# φ_false: ∃x ∀y ∃z ((x ∨ y ∨ y) ∧ (¬x ∨ y ∨ y)) ≡ ∀y. y — false.
FALSE_FORMULA = exists_forall_exists_3sat([1], [2], [3], [(1, 2, 2), (-1, 2, 2)])


class TestFormulaFixtures:
    def test_truth_values(self):
        assert TRUE_FORMULA.is_true()
        assert not FALSE_FORMULA.is_true()


class TestStrongMINPReduction:
    """Theorem 4.8: φ is false iff T is minimal strongly complete."""

    def test_rejects_wrong_prefix(self):
        with pytest.raises(ReductionError):
            build_strong_minp_reduction(forall_exists_3sat([1], [2], [(1, 2, 2)]))

    def test_construction_shape(self):
        reduction = build_strong_minp_reduction(TRUE_FORMULA)
        assert reduction.cinstance.table("R_X").rows[0].term_variables()
        assert len(reduction.cinstance.table("R_s")) == 2
        assert reduction.query.arity == 1  # one Y variable

    @pytest.mark.parametrize(
        "formula", [TRUE_FORMULA, FALSE_FORMULA], ids=["phi_true", "phi_false"]
    )
    def test_equivalence_with_minp_decider(self, formula: QuantifiedFormula):
        reduction = build_strong_minp_reduction(formula)
        minimal = is_minimal_strongly_complete(
            reduction.cinstance,
            reduction.query,
            reduction.master,
            reduction.constraints,
        )
        assert minimal == (not reduction.formula_is_true())

    def test_worlds_are_strongly_complete_when_formula_false(self):
        # Completeness itself holds regardless of minimality when φ is false.
        reduction = build_strong_minp_reduction(FALSE_FORMULA)
        assert is_strongly_complete(
            reduction.cinstance,
            reduction.query,
            reduction.master,
            reduction.constraints,
        )


class TestViableRCDPReduction:
    """Theorem 6.1: φ is true iff T is viably complete."""

    def test_rejects_wrong_prefix(self):
        bad = QuantifiedFormula(
            prefix=[(Quantifier.FORALL, [1]), (Quantifier.EXISTS, [2]), (Quantifier.EXISTS, [3])],
            matrix=TRUE_FORMULA.matrix,
        )
        with pytest.raises(ReductionError):
            build_viable_rcdp_reduction(bad)

    def test_construction_shape(self):
        reduction = build_viable_rcdp_reduction(TRUE_FORMULA)
        assert len(reduction.cinstance.table("R_s")) == 1
        # The query has no Q_all guard, so it is strictly smaller than the
        # Theorem 4.8 query on the same formula.
        from repro.reductions.minp_strong_reduction import build_strong_minp_reduction

        minp_query = build_strong_minp_reduction(TRUE_FORMULA).query
        assert len(reduction.query.atoms) < len(minp_query.atoms)

    @pytest.mark.parametrize(
        "formula", [TRUE_FORMULA, FALSE_FORMULA], ids=["phi_true", "phi_false"]
    )
    def test_equivalence_with_viable_decider(self, formula: QuantifiedFormula):
        reduction = build_viable_rcdp_reduction(formula)
        viable = is_viably_complete(
            reduction.cinstance,
            reduction.query,
            reduction.master,
            reduction.constraints,
        )
        assert viable == reduction.formula_is_true()
