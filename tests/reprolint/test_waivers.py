"""Waiver syntax and semantics: inline disables, `all`, unknown codes."""

from tools.reprolint import lint_source, parse_waivers

# A snippet R001 flags at the iteration line (determinism rule scope).
FIXTURE_PATH = "src/repro/search/engine.py"
FLAGGED = "for row in {1, 2, 3}:\n    print(row)\n"


def _codes(violations):
    return {v.rule for v in violations}


def test_trailing_waiver_suppresses_the_line():
    source = "for row in {1, 2, 3}:  # reprolint: disable=R001\n    print(row)\n"
    assert not lint_source(source, FIXTURE_PATH)


def test_trailing_waiver_with_justification_text():
    source = (
        "for row in {1, 2}:  # reprolint: disable=R001 -- order irrelevant\n"
        "    print(row)\n"
    )
    assert not lint_source(source, FIXTURE_PATH)


def test_standalone_comment_waiver_covers_next_code_line():
    source = (
        "# reprolint: disable=R001 -- membership only\n"
        "for row in {1, 2}:\n"
        "    print(row)\n"
    )
    assert not lint_source(source, FIXTURE_PATH)


def test_multi_line_comment_waiver_extends_to_first_code_line():
    source = (
        "# reprolint: disable=R001 -- a justification long enough\n"
        "# to need a second comment line before the statement.\n"
        "for row in {1, 2}:\n"
        "    print(row)\n"
    )
    assert not lint_source(source, FIXTURE_PATH)


def test_waiver_on_wrong_line_does_not_suppress():
    source = (
        "x = 1  # reprolint: disable=R001\n"
        "y = 2\n"
        "for row in {1, 2}:\n"
        "    print(row)\n"
    )
    assert "R001" in _codes(lint_source(source, FIXTURE_PATH))


def test_disable_all_suppresses_every_rule():
    source = "for row in {1, 2}:  # reprolint: disable=all\n    print(row)\n"
    assert not lint_source(source, FIXTURE_PATH)


def test_waiver_for_other_rule_does_not_suppress():
    source = "for row in {1, 2}:  # reprolint: disable=R002\n    print(row)\n"
    assert "R001" in _codes(lint_source(source, FIXTURE_PATH))


def test_unknown_waiver_code_reports_r000():
    # Concatenated so this test file's own source line is not parsed as a
    # (stale) waiver when the repository lints itself.
    source = "x = 1  # reprolint: " + "disable=R998\n"
    violations = lint_source(source, FIXTURE_PATH)
    assert [v.rule for v in violations] == ["R000"]
    assert "R998" in violations[0].message


def test_comma_separated_codes_parse():
    waived = parse_waivers("x = 1  # reprolint: disable=R001, R005\n")
    assert waived[1] == {"R001", "R005"}
    assert waived[2] == {"R001", "R005"}  # trailing waivers cover line below


def test_respect_waivers_false_surfaces_waived_findings():
    source = "for row in {1, 2}:  # reprolint: disable=R001\n    print(row)\n"
    assert "R001" in _codes(
        lint_source(source, FIXTURE_PATH, respect_waivers=False)
    )
