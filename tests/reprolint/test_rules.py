"""Fixture-driven tests for every registered reprolint rule.

Each rule carries its own ``must_flag`` / ``must_pass`` snippets; these
tests lint every snippet *as if* it lived at the rule's ``fixture_path``.
The meta-test at the bottom guarantees that no rule can ship without both
fixture kinds, so a new rule is untestable-by-construction only if this
suite fails.
"""

import pytest

from tools.reprolint import all_rules, get_rule, lint_source

RULES = all_rules()
RULE_IDS = [rule.code for rule in RULES]


def _codes(violations):
    return {v.rule for v in violations}


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_must_flag_fixtures_are_flagged(rule):
    for index, snippet in enumerate(rule.must_flag):
        violations = lint_source(snippet, rule.fixture_path, [rule])
        assert rule.code in _codes(violations), (
            f"{rule.code} must_flag fixture #{index} produced no {rule.code} "
            f"violation:\n{snippet}"
        )


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_must_pass_fixtures_are_clean(rule):
    for index, snippet in enumerate(rule.must_pass):
        violations = lint_source(snippet, rule.fixture_path, [rule])
        assert not violations, (
            f"{rule.code} must_pass fixture #{index} was flagged: "
            f"{[v.format() for v in violations]}\n{snippet}"
        )


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_rule_applies_to_its_own_fixture_path(rule):
    assert rule.applies_to(rule.fixture_path)


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_rule_metadata_is_complete(rule):
    """Every rule documents itself: code, name, rationale, fixtures."""
    assert rule.code.startswith("R") and rule.code[1:].isdigit()
    assert rule.name
    assert rule.rationale
    assert rule.fixture_path.endswith(".py")
    assert rule.must_flag, f"{rule.code} ships no must_flag fixture"
    assert rule.must_pass, f"{rule.code} ships no must_pass fixture"


def test_all_rules_sorted_and_unique():
    codes = [rule.code for rule in RULES]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert len(codes) >= 5  # the issue's floor: determinism, session
    # balance, registry contract, decision discipline, fork safety


def test_get_rule_round_trips_and_rejects_unknown():
    for rule in RULES:
        assert get_rule(rule.code) is rule
    with pytest.raises(KeyError):
        get_rule("R999")


def test_rules_do_not_fire_outside_their_scope():
    """A snippet that would be flagged in scope is ignored off scope."""
    for rule in RULES:
        if rule.applies_to("some/unrelated/module.py"):
            continue  # globally-scoped rules (R005) have no off-scope path
        for snippet in rule.must_flag:
            assert not lint_source(snippet, "some/unrelated/module.py", [rule])


def test_syntax_error_reports_r000():
    violations = lint_source("def broken(:\n", "src/repro/search/x.py")
    assert [v.rule for v in violations] == ["R000"]
    assert "parse" in violations[0].message
