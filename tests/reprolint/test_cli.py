"""The ``python -m tools.reprolint`` command line: output formats, filters,
exit codes — and the acceptance gate that the repository itself lints clean."""

import json
import subprocess
import sys
from pathlib import Path

from tools.reprolint import all_rules, lint_paths
from tools.reprolint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "x = sorted({1, 2, 3})\n"
DIRTY = "for row in {1, 2, 3}:\n    print(row)\n"


def _tree(tmp_path, name, source):
    # Recreate the scoped layout so path-sensitive rules apply.
    target = tmp_path / "src" / "repro" / "search" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


def test_clean_tree_exits_zero(tmp_path, capsys):
    _tree(tmp_path, "clean.py", CLEAN)
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "1 file" in out


def test_dirty_tree_exits_one_and_prints_findings(tmp_path, capsys):
    target = _tree(tmp_path, "dirty.py", DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{target}:1:" in out
    assert "R001" in out


def test_json_format(tmp_path, capsys):
    _tree(tmp_path, "dirty.py", DIRTY)
    assert main([str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["violations"][0]["rule"] == "R001"
    assert {r["code"] for r in payload["rules"]} >= {"R001", "R002"}


def test_rule_filter_restricts_checks(tmp_path):
    _tree(tmp_path, "dirty.py", DIRTY)
    assert main([str(tmp_path), "--rule", "R003"]) == 0
    assert main([str(tmp_path), "--rule", "R001"]) == 1


def test_no_waivers_flag(tmp_path):
    _tree(
        tmp_path,
        "waived.py",
        "for row in {1, 2}:  # reprolint: disable=R001\n    print(row)\n",
    )
    assert main([str(tmp_path)]) == 0
    assert main([str(tmp_path), "--no-waivers"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "--list-rules"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0
    assert "R001" in proc.stdout


def test_repository_lints_clean():
    """The acceptance gate: src/tests/benchmarks carry no unwaived findings."""
    violations, checked = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert checked > 100  # sanity: the walk actually found the tree
    assert not violations, "\n".join(v.format() for v in violations)
