"""End-to-end tests of every worked example in the paper.

Each test names the example it reproduces; the verdicts asserted here are the
verdicts the paper states.  The tests exercise the public API the way a user
of the library would (through :mod:`repro.workloads.patients` and the
top-level deciders), so they also double as integration tests across the
relational, query, c-table, constraint and completeness layers.
"""

import pytest

from repro import (
    STRONG,
    VIABLE,
    WEAK,
    CompletenessModel,
    is_consistent,
    is_extensible,
    is_ground_complete,
    is_minimal_complete,
    is_relatively_complete,
    weak_completeness_report,
)
from repro.completeness.minp import is_minimal_ground_complete
from repro.completeness.weak import is_weakly_complete, is_weakly_complete_bounded
from repro.ctables.cinstance import CInstance, cinstance
from repro.queries.atoms import atom, eq
from repro.queries.cq import cq
from repro.queries.fo import native_query
from repro.queries.terms import var
from repro.relational.instance import empty_instance, instance
from repro.relational.master import empty_master
from repro.relational.schema import database_schema, schema
from repro.workloads.patients import (
    ABSENT_NHS,
    BOB_NHS,
    build_patient_scenario,
    display_figure1_cinstance,
)

x, y, z, na = var("x"), var("y"), var("z"), var("na")


@pytest.fixture(scope="module")
def scenario():
    return build_patient_scenario()


class TestExample11And22GroundInstances:
    """Examples 1.1 and 2.2: relative completeness of ground instances."""

    def test_q1_complete_when_all_master_matches_returned(self, scenario):
        assert is_ground_complete(
            scenario.ground_db, scenario.q1, scenario.master, scenario.constraints
        )

    def test_q2_becomes_complete_after_adding_one_tuple(self, scenario):
        empty = empty_instance(scenario.schema)
        assert not is_ground_complete(
            empty, scenario.q2_present, scenario.master, scenario.constraints
        )
        extended = instance(
            scenario.schema, MVisit=[(BOB_NHS, "Bob", "EDI", 2000)]
        )
        assert is_ground_complete(
            extended, scenario.q2_present, scenario.master, scenario.constraints
        )

    def test_q2_absent_nhs_complete_on_empty_database(self, scenario):
        empty = empty_instance(scenario.schema)
        assert is_ground_complete(
            empty, scenario.q2_absent, scenario.master, scenario.constraints
        )

    def test_q3_can_never_be_made_complete(self, scenario):
        for db in (
            scenario.ground_db,
            scenario.ground_db.with_tuple("MVisit", ("915-15-999", "Zoe", "LON", 1999)),
        ):
            assert not is_ground_complete(
                db, scenario.q3, scenario.master, scenario.constraints
            )


class TestExample23CompletenessModels:
    """Example 2.3: the Figure 1 c-instance under the three models."""

    def test_q1_strongly_complete(self, scenario):
        assert is_relatively_complete(
            scenario.figure1, scenario.q1, scenario.master, scenario.constraints, STRONG
        )

    def test_q4_viably_and_weakly_but_not_strongly_complete(self, scenario):
        verdicts = {
            model: is_relatively_complete(
                scenario.figure1, scenario.q4, scenario.master, scenario.constraints, model
            )
            for model in CompletenessModel
        }
        assert verdicts[STRONG].holds is False
        assert verdicts[WEAK].holds is True
        assert verdicts[VIABLE].holds is True

    def test_q4_certain_answer_is_john(self, scenario):
        report = weak_completeness_report(
            scenario.figure1, scenario.q4, scenario.master, scenario.constraints
        )
        assert report.details.certain_over_models == {("John",)}

    def test_strong_implies_weak_and_viable(self, scenario):
        for query in (scenario.q1, scenario.q2_absent):
            if is_relatively_complete(
                scenario.figure1, query, scenario.master, scenario.constraints, STRONG
            ):
                assert is_relatively_complete(
                    scenario.figure1, query, scenario.master, scenario.constraints, WEAK
                )
                assert is_relatively_complete(
                    scenario.figure1, query, scenario.master, scenario.constraints, VIABLE
                )


class TestExample24Minimality:
    """Example 2.4: minimal complete databases."""

    def test_single_tuple_database_is_minimal_for_q2(self, scenario):
        single = instance(scenario.schema, MVisit=[(BOB_NHS, "Bob", "EDI", 2000)])
        assert is_minimal_ground_complete(
            single, scenario.q2_present, scenario.master, scenario.constraints
        )

    def test_empty_database_minimal_weakly_complete_for_q2(self, scenario):
        # Example 2.4: D is a minimal instance weakly complete for Q2 if D is
        # empty (the certain answer over extensions is empty because the name
        # attached to the NHS number is not itself forced by any single world).
        empty = CInstance.from_ground_instance(empty_instance(scenario.schema))
        assert is_weakly_complete(
            empty, scenario.q2_absent, scenario.master, scenario.constraints
        )

    def test_figure1_not_minimal_for_q1(self, scenario):
        assert not is_minimal_complete(
            scenario.figure1, scenario.q1, scenario.master, scenario.constraints, STRONG
        )
        trimmed = scenario.figure1.without_row("MVisit", 1)
        assert is_minimal_complete(
            trimmed, scenario.q1, scenario.master, scenario.constraints, STRONG
        )


class TestExample53WeakModelRCQPGap:
    """Example 5.3: ground instances and c-instances differ for weak-model FO."""

    @pytest.fixture
    def pair_schema(self):
        return database_schema(schema("R1", "A"), schema("R2", "A"))

    @pytest.fixture
    def subset_query(self):
        def run(inst):
            if set(inst["R1"].rows) <= set(inst["R2"].rows):
                return frozenset({("a",)})
            return frozenset({("b",)})

        return native_query("subset", 1, run, monotone=False)

    def test_no_ground_instance_weakly_complete(self, pair_schema, subset_query):
        md = empty_master(database_schema(schema("M", "A")))
        for db in (
            empty_instance(pair_schema),
            instance(pair_schema, R1=[(1,)], R2=[(1,)]),
        ):
            T = CInstance.from_ground_instance(db)
            assert not is_weakly_complete_bounded(T, subset_query, md, [])

    def test_all_variable_cinstance_weakly_complete(self, pair_schema, subset_query):
        md = empty_master(database_schema(schema("M", "A")))
        T = cinstance(pair_schema, R1=[(x,)], R2=[(y,)])
        assert is_weakly_complete_bounded(T, subset_query, md, [])


class TestExample55WeakMinimality:
    """Example 5.5: Lemma 4.7 fails in the weak model."""

    @pytest.fixture
    def setup(self):
        pair_schema = database_schema(schema("R1", "A"), schema("R2", "A"))
        md = empty_master(database_schema(schema("M", "A")))
        query = cq(
            "Q",
            [x],
            atoms=[atom("R1", y), atom("R2", z)],
            comparisons=[eq(x, "a")],
        )
        return pair_schema, md, query

    def test_i0_weakly_complete_but_not_minimal(self, setup):
        pair_schema, md, query = setup
        i0 = CInstance.from_ground_instance(instance(pair_schema, R1=[(0,)], R2=[(1,)]))
        empty = CInstance.from_ground_instance(empty_instance(pair_schema))
        assert is_weakly_complete(i0, query, md, [])
        assert is_weakly_complete(empty, query, md, [])
        assert not is_minimal_complete(i0, query, md, [], CompletenessModel.WEAK)
        assert is_minimal_complete(empty, query, md, [], CompletenessModel.WEAK)

    def test_weak_minimality_examines_all_subinstances(self, setup):
        # In the weak model minimality is defined against *every* strict
        # sub-instance (not just single-tuple removals, Example 5.5); the
        # decider therefore finds the empty instance as a counterexample to
        # I₀'s minimality even though I₀ itself is weakly complete.
        pair_schema, md, query = setup
        i0 = CInstance.from_ground_instance(instance(pair_schema, R1=[(0,)], R2=[(1,)]))
        witnesses = [
            smaller
            for smaller in i0.strict_subinstances()
            if is_weakly_complete(smaller, query, md, [])
        ]
        assert any(smaller.is_empty() for smaller in witnesses)


class TestFigure1DisplayVersion:
    """The verbatim Figure 1 c-table (presentation schema)."""

    def test_shape_matches_figure(self):
        T = display_figure1_cinstance()
        table = T["MVisit"]
        assert len(table) == 5
        assert table.schema.arity == 8
        # Rows t2 and t3 carry local conditions; the others do not.
        conditions = [not row.condition.is_true for row in table.rows]
        assert conditions == [False, True, True, False, False]
        # The variables of Figure 1 are x, z (row t2), w, u (row t3).
        names = {v.name for v in table.variables()}
        assert names == {"x", "z", "w", "u"}


class TestConsistencyAndExtensibilityOnScenario:
    """Section 3 analyses applied to the running scenario."""

    def test_figure1_is_consistent(self, scenario):
        assert is_consistent(scenario.figure1, scenario.master, scenario.constraints)

    def test_ghost_patient_makes_it_inconsistent(self, scenario):
        ghost = cinstance(
            scenario.schema, MVisit=[(ABSENT_NHS, x, "EDI", 2000)]
        )
        assert not is_consistent(ghost, scenario.master, scenario.constraints)

    def test_john_db_is_extensible(self, scenario):
        assert is_extensible(scenario.ground_db, scenario.master, scenario.constraints)
