"""Tests for c-table local conditions."""

import pytest

from repro.exceptions import ConditionError
from repro.ctables.conditions import TRUE, Condition, condition, var_eq, var_neq
from repro.queries.atoms import eq, neq
from repro.queries.terms import var

x, y, z = var("x"), var("y"), var("z")


class TestConditionBasics:
    def test_true_condition(self):
        assert TRUE.is_true
        assert TRUE.evaluate({})
        assert TRUE.variables() == set()

    def test_condition_variables_and_constants(self):
        c = condition(neq(x, 2001), eq(y, z))
        assert c.variables() == {x, y, z}
        assert c.constants() == {2001}

    def test_non_comparison_conjunct_rejected(self):
        with pytest.raises(ConditionError):
            Condition(("not a comparison",))

    def test_var_eq_and_var_neq_helpers(self):
        assert var_eq(x, 5) == eq(x, 5)
        assert var_neq(x, y) == neq(x, y)
        with pytest.raises(ConditionError):
            var_eq(5, x)
        with pytest.raises(ConditionError):
            var_neq("c", x)


class TestConditionEvaluation:
    def test_satisfied(self):
        c = condition(neq(x, 2001))
        assert c.evaluate({x: 2000})
        assert not c.evaluate({x: 2001})

    def test_conjunction_semantics(self):
        c = condition(neq(x, 1), eq(y, 2))
        assert c.evaluate({x: 0, y: 2})
        assert not c.evaluate({x: 1, y: 2})
        assert not c.evaluate({x: 0, y: 3})

    def test_variable_to_variable(self):
        c = condition(eq(x, y))
        assert c.evaluate({x: "a", y: "a"})
        assert not c.evaluate({x: "a", y: "b"})

    def test_missing_variable_rejected(self):
        with pytest.raises(ConditionError):
            condition(eq(x, y)).evaluate({x: 1})

    def test_extra_variables_in_valuation_ignored(self):
        assert condition(eq(x, 1)).evaluate({x: 1, y: 99})


class TestConditionCombinators:
    def test_conjoin(self):
        combined = condition(eq(x, 1)).conjoin(condition(neq(y, 2)))
        assert len(combined.conjuncts) == 2

    def test_with_conjunct(self):
        c = TRUE.with_conjunct(eq(x, 1), neq(y, 2))
        assert len(c.conjuncts) == 2

    def test_rename(self):
        c = condition(eq(x, y)).rename({x: z})
        assert c.variables() == {z, y}

    def test_substitute_drops_true_conjuncts(self):
        c = condition(eq(x, 1), neq(y, 2)).substitute({x: 1})
        assert c.conjuncts == (neq(y, 2),)

    def test_substitute_keeps_false_conjuncts(self):
        c = condition(eq(x, 1)).substitute({x: 2})
        assert not c.is_true
        assert not c.evaluate({})

    def test_satisfiability_over_pool(self):
        c = condition(neq(x, 0), neq(x, 1))
        assert not c.is_satisfiable_over([0, 1])
        assert c.is_satisfiable_over([0, 1, 2])

    def test_satisfiability_of_ground_condition(self):
        assert TRUE.is_satisfiable_over([])
        assert not condition(eq(1, 2)).is_satisfiable_over([5])
