"""Tests for c-tables and c-instances, including the paper's Figure 1."""

import pytest

from repro.exceptions import CTableError, ValuationError
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.conditions import TRUE, condition
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.atoms import neq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import Relation, instance
from repro.relational.schema import RelationSchema, database_schema, schema

x, y, z, w, u = var("x"), var("y"), var("z"), var("w"), var("u")


@pytest.fixture
def mvisit_schema():
    """The MVisit schema of Example 1.1."""
    return schema("MVisit", "NHS", "name", "city", "yob", "GD", "Date", "Diag", "DrID")


@pytest.fixture
def figure1_ctable(mvisit_schema):
    """The c-table of Figure 1."""
    return CTable(
        mvisit_schema,
        [
            CTableRow(("915-15-335", "John", "EDI", 2000, "M", "15/03/2015", "Flu", "01")),
            CTableRow(
                ("915-15-356", x, "EDI", z, "F", "15/03/2015", "Diabetes", "01"),
                condition(neq(z, 2001)),
            ),
            CTableRow(
                ("915-15-357", "Mary", w, 2000, "F", "15/03/2015", "Influenza", u),
                condition(neq(w, "EDI")),
            ),
            CTableRow(("915-15-358", "Jack", "LON", 2000, "M", "15/03/2015", "Influenza", "02")),
            CTableRow(("915-15-359", "Louis", "LON", 2000, "M", "15/03/2015", "Diabetes", "03")),
        ],
    )


class TestCTableRow:
    def test_variables_and_constants(self):
        row = CTableRow((x, 1, "a"), condition(neq(x, 2)))
        assert row.variables() == {x}
        assert row.constants() == {1, "a", 2}
        assert not row.is_ground()

    def test_ground_row(self):
        assert CTableRow((1, 2)).is_ground()

    def test_apply_respects_condition(self):
        row = CTableRow((x,), condition(neq(x, 0)))
        assert row.apply({x: 1}) == (1,)
        assert row.apply({x: 0}) is None

    def test_apply_requires_total_valuation(self):
        with pytest.raises(ValuationError):
            CTableRow((x, y)).apply({x: 1})

    def test_condition_only_variables_counted(self):
        row = CTableRow((1,), condition(neq(y, 0)))
        assert row.variables() == {y}
        assert row.term_variables() == set()


class TestCTable:
    def test_figure1_shape(self, figure1_ctable):
        assert len(figure1_ctable) == 5
        assert figure1_ctable.variables() == {x, z, w, u}
        assert not figure1_ctable.is_ground()
        assert "915-15-335" in figure1_ctable.constants()

    def test_arity_mismatch_rejected(self, mvisit_schema):
        with pytest.raises(CTableError):
            CTable(mvisit_schema, [CTableRow((1, 2))])

    def test_finite_domain_enforced_for_constants(self):
        rel = RelationSchema("R", [("A", BOOLEAN_DOMAIN)])
        CTable(rel, [CTableRow((0,)), CTableRow((x,))])
        with pytest.raises(CTableError):
            CTable(rel, [CTableRow((7,))])

    def test_plain_sequences_accepted_as_rows(self, mvisit_schema):
        table = CTable(
            mvisit_schema,
            [("915-15-001", "Ann", "EDI", 1999, "F", "01/01/2015", "Flu", "09")],
        )
        assert len(table) == 1
        assert table.rows[0].condition is TRUE

    def test_add_and_remove_row(self, figure1_ctable):
        extended = figure1_ctable.add_row(
            ("915-15-360", "Zoe", "EDI", 2001, "F", "16/03/2015", "Flu", "04")
        )
        assert len(extended) == 6
        assert len(figure1_ctable) == 5
        assert len(extended.remove_row(5)) == 5
        with pytest.raises(CTableError):
            figure1_ctable.remove_row(10)

    def test_restrict(self, figure1_ctable):
        restricted = figure1_ctable.restrict([0, 2])
        assert len(restricted) == 2
        with pytest.raises(CTableError):
            figure1_ctable.restrict([99])

    def test_apply_drops_condition_violating_rows(self, figure1_ctable):
        valuation = {x: "Alice", z: 2001, w: "LON", u: "05"}
        ground = figure1_ctable.apply(valuation)
        # Row t2 requires z ≠ 2001, so it is dropped; the other four remain.
        assert len(ground) == 4

    def test_apply_keeps_all_rows_when_conditions_hold(self, figure1_ctable):
        valuation = {x: "Alice", z: 2000, w: "LON", u: "05"}
        assert len(figure1_ctable.apply(valuation)) == 5

    def test_variable_positions(self, figure1_ctable):
        positions = figure1_ctable.variable_positions()
        assert ("MVisit", "name") in positions[x]
        assert ("MVisit", "yob") in positions[z]

    def test_from_relation_round_trip(self, mvisit_schema):
        rel = Relation(
            mvisit_schema,
            [("915-15-001", "Ann", "EDI", 1999, "F", "01/01/2015", "Flu", "09")],
        )
        table = CTable.from_relation(rel)
        assert table.is_ground()
        assert table.apply({}) == rel


class TestCInstance:
    @pytest.fixture
    def db(self, mvisit_schema):
        return database_schema(mvisit_schema)

    def test_construction_and_size(self, db, figure1_ctable):
        T = CInstance(db, {"MVisit": figure1_ctable})
        assert T.size == 5
        assert T.variables() == {x, z, w, u}
        assert not T.is_ground()

    def test_unknown_relation_rejected(self, db):
        with pytest.raises(CTableError):
            CInstance(db, {"Other": []})

    def test_apply_produces_ground_instance(self, db, figure1_ctable):
        T = CInstance(db, {"MVisit": figure1_ctable})
        world = T.apply({x: "Alice", z: 1999, w: "GLA", u: "07"})
        assert world.schema == db
        assert world.size == 5

    def test_with_and_without_row(self, db, figure1_ctable):
        T = CInstance(db, {"MVisit": figure1_ctable})
        bigger = T.with_row(
            "MVisit", ("915-15-400", "Eve", "EDI", 2002, "F", "20/03/2015", "Flu", "08")
        )
        assert bigger.size == 6
        assert T.size == 5
        assert bigger.without_row("MVisit", 5).size == 5

    def test_proper_subinstances(self, db, figure1_ctable):
        T = CInstance(db, {"MVisit": figure1_ctable})
        subs = list(T.proper_subinstances())
        assert len(subs) == 5
        assert all(sub.size == 4 for sub in subs)

    def test_strict_subinstances_counts(self):
        db = database_schema(schema("R", "A"))
        T = cinstance(db, R=[(x,), (1,)])
        subs = list(T.strict_subinstances())
        # Removing any non-empty subset of 2 rows: 3 possibilities.
        assert len(subs) == 3
        assert {s.size for s in subs} == {0, 1}

    def test_from_ground_instance(self, db):
        ground = instance(
            db,
            MVisit=[("915-15-001", "Ann", "EDI", 1999, "F", "01/01/2015", "Flu", "09")],
        )
        T = CInstance.from_ground_instance(ground)
        assert T.is_ground()
        assert T.apply({}) == ground

    def test_variable_domains(self):
        rel = RelationSchema("R", [("A", BOOLEAN_DOMAIN), "B"])
        db = database_schema(rel)
        T = cinstance(db, R=[(x, y)])
        domains = T.variable_domains()
        assert domains[x] == BOOLEAN_DOMAIN
        assert y not in domains

    def test_equality_and_hash(self, db, figure1_ctable):
        a = CInstance(db, {"MVisit": figure1_ctable})
        b = CInstance(db, {"MVisit": figure1_ctable})
        assert a == b
        assert hash(a) == hash(b)
