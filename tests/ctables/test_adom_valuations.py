"""Tests for the active-domain construction, valuations and possible worlds."""

import pytest

from repro.constraints.containment import cc, denial_cc, projection
from repro.ctables.adom import build_active_domain, finite_domain_values, variable_pools
from repro.ctables.cinstance import cinstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import (
    default_active_domain,
    has_model,
    model_count,
    models,
    models_with_valuations,
)
from repro.ctables.valuation import (
    apply_valuation,
    count_valuations,
    enumerate_assignments,
    enumerate_valuations,
)
from repro.exceptions import ValuationError
from repro.queries.atoms import atom, neq
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema

x, y, z = var("x"), var("y"), var("z")


@pytest.fixture
def bool_schema():
    return database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN), "B"]))


@pytest.fixture
def master_schema():
    return database_schema(schema("Rm", "A", "B"))


class TestActiveDomain:
    def test_constants_from_all_sources(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, "seen")])
        adom = build_active_domain(
            cinstance=T,
            constraint_constants={"from_cc"},
            query_constants={"from_q"},
            extra_constants={"extra"},
        )
        assert {"seen", "from_cc", "from_q", "extra", 0, 1} <= set(adom.constants)

    def test_one_fresh_value_per_variable(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y), (z, "c")])
        adom = build_active_domain(cinstance=T)
        assert len(adom.fresh_values) == 3
        assert set(adom.fresh_values) <= set(adom.constants)

    def test_fresh_values_for_extra_variables(self, bool_schema):
        T = cinstance(bool_schema, R=[(0, "c")])
        adom = build_active_domain(cinstance=T, extra_variables={var("q1"), var("q2")})
        assert len(adom.fresh_values) == 2

    def test_finite_domain_values_included(self, bool_schema):
        assert finite_domain_values(bool_schema) == {0, 1}
        adom = build_active_domain(cinstance=cinstance(bool_schema))
        assert {0, 1} <= set(adom.constants)

    def test_pool_respects_finite_domain(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y)])
        adom = build_active_domain(cinstance=T)
        pools = variable_pools(T.variables(), adom, T.variable_domains())
        assert set(pools[x]) == {0, 1}
        assert set(pools[y]) == set(adom.constants)

    def test_extend(self, bool_schema):
        adom = build_active_domain(cinstance=cinstance(bool_schema))
        assert "added" in adom.extend({"added"})

    def test_master_constants_included(self, bool_schema, master_schema):
        md = MasterData(master_schema, {"Rm": [(1, "master_val")]})
        adom = build_active_domain(cinstance=cinstance(bool_schema), master=md)
        assert "master_val" in adom


class TestValuationEnumeration:
    def test_enumerate_assignments_cartesian(self):
        pools = {x: [0, 1], y: ["a"]}
        assignments = list(enumerate_assignments(pools))
        assert len(assignments) == 2
        assert {a[x] for a in assignments} == {0, 1}
        assert all(a[y] == "a" for a in assignments)

    def test_empty_pool_yields_nothing(self):
        assert list(enumerate_assignments({x: []})) == []

    def test_enumerate_valuations_counts(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y)])
        adom = build_active_domain(cinstance=T)
        valuations = list(enumerate_valuations(T, adom))
        assert len(valuations) == count_valuations(T, adom)
        # x ranges over the Boolean domain (2), y over the full Adom.
        assert len(valuations) == 2 * len(adom.constants)

    def test_fixed_variables_respected(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y)])
        adom = build_active_domain(cinstance=T)
        valuations = list(enumerate_valuations(T, adom, fixed={x: 1}))
        assert all(v[x] == 1 for v in valuations)
        assert len(valuations) == len(adom.constants)

    def test_count_valuations_respects_fixed(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y)])
        adom = build_active_domain(cinstance=T)
        # Pinning x removes its pool factor, aligning the count with the
        # enumeration (previously the count ignored `fixed` and overstated).
        assert count_valuations(T, adom, fixed={x: 1}) == len(
            list(enumerate_valuations(T, adom, fixed={x: 1}))
        )
        assert count_valuations(T, adom, fixed={x: 1, y: "c"}) == len(
            list(enumerate_valuations(T, adom, fixed={x: 1, y: "c"}))
        )
        assert count_valuations(T, adom, fixed={}) == count_valuations(T, adom)

    def test_apply_valuation_totality_check(self, bool_schema):
        T = cinstance(bool_schema, R=[(x, y)])
        with pytest.raises(ValuationError):
            apply_valuation(T, {x: 1})

    def test_ground_cinstance_has_single_valuation(self, bool_schema):
        T = cinstance(bool_schema, R=[(1, "c")])
        adom = build_active_domain(cinstance=T)
        assert list(enumerate_valuations(T, adom)) == [{}]


class TestPossibleWorlds:
    def test_unconstrained_models(self, bool_schema, master_schema):
        T = cinstance(bool_schema, R=[(x, "c")])
        md = empty_master(master_schema)
        worlds = list(models(T, md, []))
        # x ranges over the Boolean domain {0, 1}: two distinct worlds.
        assert len(worlds) == 2

    def test_models_respect_conditions(self, bool_schema, master_schema):
        table = CTable(
            bool_schema["R"], [CTableRow((x, "c"), condition(neq(x, 0)))]
        )
        T = cinstance(bool_schema, R=table)
        md = empty_master(master_schema)
        worlds = list(models(T, md, []))
        # x = 0 violates the condition, leaving the empty world and the x = 1 world.
        sizes = sorted(w.size for w in worlds)
        assert sizes == [0, 1]

    def test_models_respect_ccs(self, bool_schema, master_schema):
        md = MasterData(master_schema, {"Rm": [(1, "c")]})
        constraint = cc(
            cq("q", [x, y], atoms=[atom("R", x, y)]),
            projection("Rm"),
        )
        T = cinstance(bool_schema, R=[(x, "c")])
        worlds = list(models(T, md, [constraint]))
        assert len(worlds) == 1
        assert (1, "c") in worlds[0]["R"]

    def test_has_model_and_count(self, bool_schema, master_schema):
        md = empty_master(master_schema)
        # A denial constraint forbidding every R tuple, combined with a
        # condition-free row, leaves no model.
        forbid_all = denial_cc(cq("q", [x, y], atoms=[atom("R", x, y)]))
        T = cinstance(bool_schema, R=[(x, "c")])
        assert not has_model(T, md, [forbid_all])
        assert model_count(T, md, []) == 2

    def test_models_with_valuations_pairs(self, bool_schema, master_schema):
        T = cinstance(bool_schema, R=[(x, "c")])
        md = empty_master(master_schema)
        pairs = list(models_with_valuations(T, md, []))
        assert all(T.apply(valuation) == world for valuation, world in pairs)

    def test_default_active_domain_includes_query(self, bool_schema, master_schema):
        T = cinstance(bool_schema, R=[(x, "c")])
        md = empty_master(master_schema)
        q = cq("Q", [y], atoms=[atom("R", y, "needle")])
        adom = default_active_domain(T, md, [], query=q)
        assert "needle" in adom

    def test_duplicate_worlds_deduplicated(self, bool_schema, master_schema):
        # Two rows with different variables can induce the same world.
        T = cinstance(bool_schema, R=[(x, "c"), (y, "c")])
        md = empty_master(master_schema)
        worlds = list(models(T, md, []))
        assert len(worlds) == len(set(worlds))
