"""Tests for the workload generators (patients scenario and registry families)."""

import pytest

from repro.completeness.consistency import is_consistent
from repro.completeness.rcdp import is_relatively_complete
from repro.completeness.models import CompletenessModel
from repro.constraints.containment import satisfies_all
from repro.queries.classify import QueryLanguage, classify
from repro.queries.evaluation import evaluate
from repro.workloads.generator import (
    chain_fp_query,
    point_queries_for_keys,
    random_cinstance,
    registry_workload,
)
from repro.workloads.patients import (
    build_patient_scenario,
    display_figure1_cinstance,
    display_schema,
)


class TestPatientScenario:
    def test_scenario_is_internally_consistent(self):
        scenario = build_patient_scenario()
        assert satisfies_all(scenario.ground_db, scenario.master, scenario.constraints)
        assert is_consistent(scenario.figure1, scenario.master, scenario.constraints)
        assert set(scenario.queries()) == {"Q1", "Q2_present", "Q2_absent", "Q3", "Q4"}

    def test_extra_master_rows_grow_the_master(self):
        base = build_patient_scenario()
        grown = build_patient_scenario(extra_master_rows=3)
        assert grown.master.size == base.master.size + 3
        # The added patients do not disturb the Figure 1 verdicts for Q1.
        assert is_relatively_complete(
            grown.figure1, grown.q1, grown.master, grown.constraints,
            CompletenessModel.STRONG,
        )

    def test_display_version_matches_figure(self):
        assert display_schema()["MVisit"].arity == 8
        assert len(display_figure1_cinstance()["MVisit"]) == 5


class TestRegistryWorkload:
    @pytest.mark.parametrize("variable_count", [0, 1, 2])
    def test_requested_number_of_variables(self, variable_count):
        workload = registry_workload(master_size=4, db_rows=3, variable_count=variable_count)
        assert len(workload.cinstance.variables()) == variable_count
        assert workload.cinstance.size == 3

    def test_generated_instances_are_partially_closed(self):
        workload = registry_workload(master_size=5, db_rows=4, variable_count=1)
        assert satisfies_all(workload.ground_db, workload.master, workload.constraints)
        assert is_consistent(workload.cinstance, workload.master, workload.constraints)

    def test_queries_answer_on_the_ground_database(self):
        workload = registry_workload(master_size=4, db_rows=2, variable_count=0)
        assert evaluate(workload.full_query, workload.ground_db)
        assert classify(workload.union_query) is QueryLanguage.UCQ

    def test_determinism(self):
        first = registry_workload(master_size=4, db_rows=2, variable_count=1, seed=9)
        second = registry_workload(master_size=4, db_rows=2, variable_count=1, seed=9)
        assert first.ground_db == second.ground_db
        assert first.cinstance == second.cinstance

    def test_without_fd_only_ind_ccs_remain(self):
        workload = registry_workload(master_size=3, with_fd=False)
        assert all(c.is_inclusion_dependency() for c in workload.constraints)


class TestGeneratorHelpers:
    def test_random_cinstance_respects_row_and_variable_budget(self):
        workload = registry_workload(master_size=3)
        T = random_cinstance(
            workload.schema, "Record", rows=4, variable_count=3,
            constant_pool=["a", "b"], seed=2,
        )
        assert len(T.table("Record")) == 4
        assert len(T.variables()) >= 1

    def test_chain_fp_query_is_fp(self):
        query = chain_fp_query()
        assert classify(query) is QueryLanguage.FP
        assert query.arity == 2

    def test_point_queries_for_keys(self):
        queries = point_queries_for_keys(["k0", "k1"])
        assert len(queries) == 2
        assert all(classify(q) is QueryLanguage.CQ for q in queries)
