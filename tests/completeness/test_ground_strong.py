"""Tests for ground-instance completeness and the strong model (Section 4)."""

import pytest

from repro.completeness.ground import (
    find_ground_incompleteness_witness,
    ground_active_domain,
    is_ground_complete,
    is_ground_complete_bounded,
)
from repro.completeness.strong import (
    find_strong_incompleteness_witness,
    is_strongly_complete,
    is_strongly_complete_bounded,
)
from repro.constraints.containment import denial_cc, relation_containment_cc
from repro.ctables.cinstance import CInstance, cinstance
from repro.exceptions import CompletenessError, InconsistentCInstanceError, QueryError
from repro.queries.atoms import atom
from repro.queries.cq import boolean_cq, cq
from repro.queries.efo import cq_as_efo
from repro.queries.fo import fo
from repro.queries.formulas import negate, rel
from repro.queries.fp import fixpoint_query, rule
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.instance import empty_instance, instance
from repro.relational.master import empty_master
from repro.relational.schema import database_schema, schema

from tests.completeness.conftest import ABSENT_NHS, BOB_NHS, JOHN_NHS

na, n, y, x = var("na"), var("n"), var("y"), var("x")


class TestGroundCompletenessPatients:
    """The ground-instance scenarios of Examples 1.1 and 2.2."""

    def test_john_db_complete_for_q1(
        self, john_only_db, q1, patient_master, patient_ccs
    ):
        assert is_ground_complete(john_only_db, q1, patient_master, patient_ccs)

    def test_empty_db_incomplete_for_q1(
        self, visit_schema, q1, patient_master, patient_ccs
    ):
        empty = empty_instance(visit_schema)
        witness = find_ground_incompleteness_witness(
            empty, q1, patient_master, patient_ccs
        )
        assert witness is not None
        assert witness.new_answers == {("John",)}

    def test_query_for_absent_nhs_is_complete_on_empty_db(
        self, visit_schema, q2_absent, patient_master, patient_ccs
    ):
        # No Edinburgh-2000 visit with an NHS number outside the master data can
        # ever be added (it would violate the CC), so the empty database already
        # has complete information for Q2 over the absent NHS number.
        empty = empty_instance(visit_schema)
        assert is_ground_complete(empty, q2_absent, patient_master, patient_ccs)

    def test_q2_bob_needs_the_bob_tuple(
        self, visit_schema, q2_bob, patient_master, patient_ccs
    ):
        empty = empty_instance(visit_schema)
        assert not is_ground_complete(empty, q2_bob, patient_master, patient_ccs)
        with_bob = instance(visit_schema, MVisit=[(BOB_NHS, "Bob", "EDI", 2000)])
        assert is_ground_complete(with_bob, q2_bob, patient_master, patient_ccs)

    def test_q3_london_cannot_be_complete(
        self, john_only_db, q3_london, patient_master, patient_ccs
    ):
        # Master data says nothing about London patients (Example 2.2 / Q3):
        # new London visits can always be added, so no database is complete.
        assert not is_ground_complete(
            john_only_db, q3_london, patient_master, patient_ccs
        )

    def test_non_partially_closed_instance_rejected(
        self, visit_schema, q1, patient_master, patient_ccs
    ):
        # A visit claiming an Edinburgh-2000 patient unknown to the master data
        # violates the CC, so the completeness question is not even posed.
        violating = instance(
            visit_schema, MVisit=[(ABSENT_NHS, "Ghost", "EDI", 2000)]
        )
        with pytest.raises(CompletenessError):
            is_ground_complete(violating, q1, patient_master, patient_ccs)

    def test_fo_query_requires_bounded_checker(
        self, john_only_db, patient_master, patient_ccs
    ):
        q = fo("Q", [na], rel("MVisit", JOHN_NHS, na, "EDI", 2000))
        with pytest.raises(QueryError):
            is_ground_complete(john_only_db, q, patient_master, patient_ccs)

    def test_bounded_checker_on_fo_query(self):
        # An FO query over a narrow schema asking for values *not* flagged in a
        # second relation: the bounded check finds the single-tuple
        # counterexample (adding a flag removes an answer), so the instance is
        # reported incomplete.
        db_schema = database_schema(schema("Val", "A"), schema("Flag", "A"))
        md = empty_master(database_schema(schema("M", "A")))
        db = instance(db_schema, Val=[(1,)])
        q = fo("Unflagged", [x], rel("Val", x) & negate(rel("Flag", x)))
        assert not is_ground_complete_bounded(db, q, md, [], max_new_tuples=1)

    def test_ground_active_domain_contains_fresh_values(
        self, john_only_db, q1, patient_master, patient_ccs
    ):
        adom = ground_active_domain(john_only_db, q1, patient_master, patient_ccs)
        assert adom.fresh_values
        assert JOHN_NHS in adom


class TestGroundCompletenessOtherLanguages:
    @pytest.fixture
    def small_schema(self):
        return database_schema(schema("R", "A"))

    @pytest.fixture
    def small_master(self):
        from repro.relational.master import MasterData

        return MasterData(database_schema(schema("Rm", "A")), {"Rm": [(1,), (2,)]})

    def test_ucq_completeness(self, small_schema, small_master):
        constraint = relation_containment_cc("R", small_schema, "Rm")
        q = ucq(
            "U",
            cq("Q1", [x], atoms=[atom("R", x)]),
            cq("Q2", [y], atoms=[atom("R", y)]),
        )
        saturated = instance(small_schema, R=[(1,), (2,)])
        partial = instance(small_schema, R=[(1,)])
        assert is_ground_complete(saturated, q, small_master, [constraint])
        assert not is_ground_complete(partial, q, small_master, [constraint])

    def test_efo_completeness_matches_cq(self, small_schema, small_master):
        constraint = relation_containment_cc("R", small_schema, "Rm")
        q_cq = cq("Q", [x], atoms=[atom("R", x)])
        q_efo = cq_as_efo(q_cq)
        saturated = instance(small_schema, R=[(1,), (2,)])
        assert is_ground_complete(saturated, q_cq, small_master, [constraint])
        assert is_ground_complete(saturated, q_efo, small_master, [constraint])

    def test_boolean_query_completeness(self, small_schema, small_master):
        constraint = relation_containment_cc("R", small_schema, "Rm")
        q = boolean_cq("Any", atoms=[atom("R", x)])
        # Once the query is true it stays true under extensions (monotone), so
        # any instance making it true is complete.
        assert is_ground_complete(
            instance(small_schema, R=[(1,)]), q, small_master, [constraint]
        )
        # The empty instance is not complete: adding (1,) flips the answer.
        assert not is_ground_complete(
            empty_instance(small_schema), q, small_master, [constraint]
        )

    def test_fp_query_bounded_check(self, small_schema, small_master):
        constraint = relation_containment_cc("R", small_schema, "Rm")
        q = fixpoint_query("Reach", output="P", rules=[rule(atom("P", x), atom("R", x))])
        saturated = instance(small_schema, R=[(1,), (2,)])
        partial = instance(small_schema, R=[(1,)])
        assert is_ground_complete_bounded(saturated, q, small_master, [constraint])
        assert not is_ground_complete_bounded(partial, q, small_master, [constraint])


class TestStrongModel:
    def test_figure1_strongly_complete_for_q1(
        self, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        # Example 2.3: no matter how the missing values are filled in, Q1 keeps
        # returning exactly John.
        assert is_strongly_complete(
            figure1_cinstance, q1, patient_master, patient_ccs
        )

    def test_figure1_not_strongly_complete_for_q4(
        self, figure1_cinstance, q4, patient_master, patient_ccs
    ):
        # Example 2.3: the world where Bob's year of birth is not 2000 can still
        # be extended with Bob's Edinburgh-2000 visit, changing the answer.
        witness = find_strong_incompleteness_witness(
            figure1_cinstance, q4, patient_master, patient_ccs
        )
        assert witness is not None
        assert ("Bob",) in witness.ground_witness.new_answers

    def test_ground_instances_embed_into_strong_model(
        self, john_only_db, q1, patient_master, patient_ccs
    ):
        T = CInstance.from_ground_instance(john_only_db)
        assert is_strongly_complete(T, q1, patient_master, patient_ccs)

    def test_inconsistent_cinstance_raises(self, visit_schema, q1, patient_master):
        forbid_all = denial_cc(
            boolean_cq("forbid", atoms=[atom("MVisit", n, na, var("c"), y)])
        )
        T = cinstance(visit_schema, MVisit=[(JOHN_NHS, "John", "EDI", 2000)])
        with pytest.raises(InconsistentCInstanceError):
            is_strongly_complete(T, q1, patient_master, [forbid_all])

    def test_bounded_strong_check_agrees_on_positive_queries(self):
        # The bounded checker must agree with the exact decider on a positive
        # query (small schema: the exhaustive single-tuple enumeration over
        # Adom^arity stays cheap).
        db_schema = database_schema(schema("R", "A"))
        from repro.relational.master import MasterData

        md = MasterData(database_schema(schema("Rm", "A")), {"Rm": [(1,), (2,)]})
        constraint = relation_containment_cc("R", db_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        saturated = cinstance(db_schema, R=[(1,), (2,)])
        partial = cinstance(db_schema, R=[(1,)])
        assert is_strongly_complete(saturated, q, md, [constraint])
        assert is_strongly_complete_bounded(saturated, q, md, [constraint])
        assert not is_strongly_complete(partial, q, md, [constraint])
        assert not is_strongly_complete_bounded(partial, q, md, [constraint])
