"""Tests for extensions, the consistency problem and the extensibility problem."""

import pytest

from repro.completeness.consistency import (
    consistent_world,
    extension_witness,
    is_consistent,
    is_extensible,
    is_partially_closed_world,
)
from repro.completeness.extensions import (
    bounded_extensions,
    candidate_rows,
    has_partially_closed_extension,
    single_tuple_extensions,
    tableau_extensions,
    tableau_valuations,
)
from repro.constraints.containment import denial_cc, relation_containment_cc
from repro.ctables.adom import build_active_domain
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.exceptions import BoundExceededError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import empty_instance, instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema

x, y, a, b = var("x"), var("y"), var("a"), var("b")


@pytest.fixture
def pair_schema():
    return database_schema(schema("R", "A", "B"))


@pytest.fixture
def bool_pair_schema():
    return database_schema(
        RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
    )


@pytest.fixture
def master_pair():
    master_schema = database_schema(schema("Rm", "A", "B"))
    return MasterData(master_schema, {"Rm": [(0, 0), (1, 1)]})


class TestCandidateRowsAndExtensions:
    def test_candidate_rows_respect_finite_domains(self, bool_pair_schema):
        T = cinstance(bool_pair_schema)
        adom = build_active_domain(cinstance=T)
        rows = list(candidate_rows(bool_pair_schema["R"], adom))
        assert set(rows) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_single_tuple_extensions_respect_ccs(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        base = empty_instance(bool_pair_schema)
        adom = build_active_domain(cinstance=cinstance(bool_pair_schema), master=master_pair)
        extensions = list(
            single_tuple_extensions(base, master_pair, [constraint], adom)
        )
        added = {tuple(ext["R"].rows)[0] for ext in extensions}
        assert added == {(0, 0), (1, 1)}

    def test_single_tuple_extensions_skip_existing_rows(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        base = instance(bool_pair_schema, R=[(0, 0)])
        adom = build_active_domain(cinstance=cinstance(bool_pair_schema), master=master_pair)
        extensions = list(single_tuple_extensions(base, master_pair, [constraint], adom))
        assert len(extensions) == 1
        assert (1, 1) in extensions[0]["R"]

    def test_extension_budget(self, pair_schema):
        base = empty_instance(pair_schema)
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        adom = build_active_domain(
            cinstance=cinstance(pair_schema), extra_constants=set(range(10))
        )
        with pytest.raises(BoundExceededError):
            list(single_tuple_extensions(base, md, [], adom, limit=5))

    def test_bounded_extensions_depth(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        base = empty_instance(bool_pair_schema)
        adom = build_active_domain(cinstance=cinstance(bool_pair_schema), master=master_pair)
        depth1 = list(bounded_extensions(base, master_pair, [constraint], adom, 1))
        depth2 = list(bounded_extensions(base, master_pair, [constraint], adom, 2))
        assert {ext.size for ext in depth1} == {1}
        assert {ext.size for ext in depth2} == {1, 2}

    def test_tableau_valuations_satisfy_comparisons(self, bool_pair_schema):
        q = cq("Q", [x], atoms=[atom("R", x, y)], comparisons=[neq(x, y)])
        adom = build_active_domain(cinstance=cinstance(bool_pair_schema))
        valuations = list(tableau_valuations(q, adom, empty_instance(bool_pair_schema)))
        assert valuations
        assert all(v[x] != v[y] for v in valuations)
        assert all(v[x] in (0, 1) and v[y] in (0, 1) for v in valuations)

    def test_tableau_extensions_partially_closed_only(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        q = cq("Q", [x, y], atoms=[atom("R", x, y)])
        base = empty_instance(bool_pair_schema)
        adom = build_active_domain(cinstance=cinstance(bool_pair_schema), master=master_pair)
        results = list(
            tableau_extensions(base, q, master_pair, [constraint], adom)
        )
        worlds = {tuple(sorted(ext["R"].rows)) for _v, ext in results}
        assert worlds == {((0, 0),), ((1, 1),)}


class TestConsistencyProblem:
    def test_unconstrained_cinstance_is_consistent(self, pair_schema):
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        T = cinstance(pair_schema, R=[(x, 1)])
        assert is_consistent(T, md, [])
        assert consistent_world(T, md, []) is not None

    def test_denial_constraint_can_make_inconsistent(self, pair_schema):
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        forbid_all = denial_cc(boolean_cq("q", atoms=[atom("R", a, b)]))
        T = cinstance(pair_schema, R=[(x, 1)])
        assert not is_consistent(T, md, [forbid_all])
        assert consistent_world(T, md, [forbid_all]) is None

    def test_conditions_can_restore_consistency(self, bool_pair_schema):
        # The denial constraint forbids rows with A = 1; the c-table row can
        # only avoid it because its condition allows choosing x = 0.
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        forbid_one = denial_cc(
            boolean_cq("q", atoms=[atom("R", a, b)], comparisons=[eq(a, 1)])
        )
        table = CTable(bool_pair_schema["R"], [CTableRow((x, 0))])
        T = CInstance(bool_pair_schema, {"R": table})
        assert is_consistent(T, md, [forbid_one])
        # A condition that pins the variable to the forbidden value does not
        # make the c-instance inconsistent: the violating valuation simply
        # drops the row, leaving the (consistent) empty world.
        table_pinned = CTable(
            bool_pair_schema["R"], [CTableRow((x, 0), condition(eq(x, 1)))]
        )
        T_pinned = CInstance(bool_pair_schema, {"R": table_pinned})
        assert is_consistent(T_pinned, md, [forbid_one])
        assert consistent_world(T_pinned, md, [forbid_one]).is_empty()
        # A ground row carrying the forbidden value, however, is inconsistent.
        T_bad = cinstance(bool_pair_schema, R=[(1, 0)])
        assert not is_consistent(T_bad, md, [forbid_one])

    def test_master_bound_consistency(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        consistent = cinstance(bool_pair_schema, R=[(x, x)])
        # A ground row outside the master relation cannot be repaired by any
        # valuation, so the c-instance represents no partially closed world.
        inconsistent = cinstance(bool_pair_schema, R=[(0, 1), (x, x)])
        assert is_consistent(consistent, master_pair, [constraint])
        assert not is_consistent(inconsistent, master_pair, [constraint])


class TestExtensibilityProblem:
    def test_unconstrained_instance_is_extensible(self, pair_schema):
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        assert is_extensible(empty_instance(pair_schema), md, [])
        assert extension_witness(empty_instance(pair_schema), md, []) is not None

    def test_saturated_instance_is_not_extensible(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        saturated = instance(bool_pair_schema, R=[(0, 0), (1, 1)])
        assert not is_extensible(saturated, master_pair, [constraint])
        assert extension_witness(saturated, master_pair, [constraint]) is None

    def test_partially_saturated_instance_is_extensible(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        partial = instance(bool_pair_schema, R=[(0, 0)])
        assert is_extensible(partial, master_pair, [constraint])
        witness = extension_witness(partial, master_pair, [constraint])
        assert witness is not None
        assert (1, 1) in witness["R"]

    def test_denial_of_everything_blocks_extension(self, bool_pair_schema):
        md = empty_master(database_schema(schema("Rm", "A", "B")))
        forbid_all = denial_cc(boolean_cq("q", atoms=[atom("R", a, b)]))
        assert not is_extensible(empty_instance(bool_pair_schema), md, [forbid_all])

    def test_partially_closed_world_helper(self, bool_pair_schema, master_pair):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        assert is_partially_closed_world(
            instance(bool_pair_schema, R=[(0, 0)]), master_pair, [constraint]
        )
        assert not is_partially_closed_world(
            instance(bool_pair_schema, R=[(0, 1)]), master_pair, [constraint]
        )

    def test_has_partially_closed_extension_matches_is_extensible(
        self, bool_pair_schema, master_pair
    ):
        constraint = relation_containment_cc("R", bool_pair_schema, "Rm")
        base = instance(bool_pair_schema, R=[(0, 0)])
        adom = build_active_domain(
            cinstance=cinstance(bool_pair_schema), master=master_pair
        )
        assert has_partially_closed_extension(base, master_pair, [constraint], adom)
