"""The ``require_consistent`` flag across exact and bounded deciders.

The exact strong decider has always exposed ``require_consistent=False``
(an inconsistent c-instance is vacuously strongly complete).  The bounded
variants and the weak/viable exact deciders used to raise unconditionally on
empty ``Mod(T, D_m, V)``; these tests pin the now-uniform API: every decider
raises by default and returns its model's vacuous verdict with the flag off.
"""

import pytest

from repro.completeness.models import CompletenessModel
from repro.completeness.rcdp import is_relatively_complete
from repro.completeness.strong import is_strongly_complete, is_strongly_complete_bounded
from repro.completeness.viable import (
    find_viable_witness,
    is_viably_complete,
    is_viably_complete_bounded,
)
from repro.completeness.weak import (
    is_weakly_complete,
    is_weakly_complete_bounded,
    weak_completeness_report,
)
from repro.constraints.containment import denial_cc
from repro.ctables.cinstance import cinstance
from repro.exceptions import InconsistentCInstanceError
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import empty_master
from repro.relational.schema import RelationSchema, database_schema, schema

x = var("x")


@pytest.fixture
def inconsistent_input():
    """A c-instance with an unconditionally present row forbidden by a CC."""
    bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
    master = empty_master(database_schema(schema("M", "A")))
    forbid_all = denial_cc(cq("forbid", [x], atoms=[atom("R", x)]))
    T = cinstance(bool_schema, R=[(x,)])
    query = cq("Q", [x], atoms=[atom("R", x)])
    return T, query, master, [forbid_all]


class TestBoundedVariants:
    def test_strong_bounded_raises_by_default(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_strongly_complete_bounded(T, query, master, constraints)
        assert (
            is_strongly_complete_bounded(
                T, query, master, constraints, require_consistent=False
            ).holds
            is True
        )

    def test_weak_bounded_raises_by_default(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_weakly_complete_bounded(T, query, master, constraints)
        assert (
            is_weakly_complete_bounded(
                T, query, master, constraints, require_consistent=False
            ).holds
            is True
        )

    def test_viable_bounded_raises_by_default(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_viably_complete_bounded(T, query, master, constraints)
        assert (
            is_viably_complete_bounded(
                T, query, master, constraints, require_consistent=False
            ).holds
            is False
        )


class TestExactVariants:
    def test_strong_exact_flag(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_strongly_complete(T, query, master, constraints)
        assert (
            is_strongly_complete(T, query, master, constraints, require_consistent=False).holds
            is True
        )

    def test_weak_exact_flag(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_weakly_complete(T, query, master, constraints)
        assert (
            is_weakly_complete(T, query, master, constraints, require_consistent=False).holds
            is True
        )
        report = weak_completeness_report(
            T, query, master, constraints, require_consistent=False
        )
        assert report.holds and report.details.no_world_has_extensions

    def test_viable_exact_flag(self, inconsistent_input):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_viably_complete(T, query, master, constraints)
        assert (
            is_viably_complete(T, query, master, constraints, require_consistent=False).holds
            is False
        )
        assert (
            find_viable_witness(T, query, master, constraints, require_consistent=False)
            is None
        )


class TestFrontEndThreading:
    @pytest.mark.parametrize(
        "model,vacuous",
        [
            (CompletenessModel.STRONG, True),
            (CompletenessModel.WEAK, True),
            (CompletenessModel.VIABLE, False),
        ],
    )
    def test_rcdp_threads_flag(self, inconsistent_input, model, vacuous):
        T, query, master, constraints = inconsistent_input
        with pytest.raises(InconsistentCInstanceError):
            is_relatively_complete(T, query, master, constraints, model)
        assert (
            is_relatively_complete(
                T, query, master, constraints, model, require_consistent=False
            ).holds
            is vacuous
        )

    @pytest.mark.parametrize("engine", ["naive", "propagating"])
    def test_flag_engine_combination(self, inconsistent_input, engine):
        T, query, master, constraints = inconsistent_input
        assert (
            is_relatively_complete(
                T,
                query,
                master,
                constraints,
                CompletenessModel.STRONG,
                require_consistent=False,
                engine=engine,
            ).holds
            is True
        )
