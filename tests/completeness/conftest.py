"""Shared fixtures for the completeness tests.

The *patients* fixtures encode a trimmed version of the paper's running MDM
example (Example 1.1 / Figure 1): a database of doctor visits
``MVisit(NHS, name, city, yob)`` bounded by master data
``Patientm(NHS, name, yob)`` that is complete for Edinburgh patients born in
2000.  The trimming (fewer attributes, a one-year range) keeps the active
domain small enough for the exponential deciders while preserving every
phenomenon the paper's examples exercise.
"""

import pytest

from repro.constraints.containment import cc, denial_cc, projection
from repro.ctables.cinstance import CInstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.instance import instance
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema

n, na, c, y = var("n"), var("na"), var("c"), var("y")
n2, na2 = var("n2"), var("na2")
x, z = var("x"), var("z")

JOHN_NHS = "915-15-335"
BOB_NHS = "915-15-336"
ABSENT_NHS = "915-15-321"


@pytest.fixture
def visit_schema():
    """Trimmed MVisit schema (Example 1.1)."""
    return database_schema(schema("MVisit", "NHS", "name", "city", "yob"))


@pytest.fixture
def patient_master():
    """Master data: the complete record of Edinburgh patients born in 2000."""
    master_schema = database_schema(schema("Patientm", "NHS", "name", "yob"))
    return MasterData(
        master_schema,
        {"Patientm": [(JOHN_NHS, "John", 2000), (BOB_NHS, "Bob", 2000)]},
    )


@pytest.fixture
def patient_ccs():
    """The CCs of Example 2.1 (trimmed).

    * Edinburgh visits of patients born in 2000 are bounded by the master data.
    * The FD ``NHS → name`` encoded as a denial-shaped CC.
    """
    bound_by_master = cc(
        cq(
            "q2000",
            [n, na],
            atoms=[atom("MVisit", n, na, c, y)],
            comparisons=[eq(c, "EDI"), eq(y, 2000)],
        ),
        projection("Patientm", "NHS", "name"),
        name="edinburgh-2000",
    )
    fd_name = denial_cc(
        boolean_cq(
            "fd_nhs_name",
            atoms=[
                atom("MVisit", n, na, var("c1"), var("y1")),
                atom("MVisit", n, na2, var("c2"), var("y2")),
            ],
            comparisons=[neq(na, na2)],
        ),
        name="fd:NHS→name",
    )
    return [bound_by_master, fd_name]


@pytest.fixture
def q1():
    """Q1 (Example 1.1): names of Edinburgh patients born in 2000 with John's NHS number."""
    return cq(
        "Q1",
        [na],
        atoms=[atom("MVisit", JOHN_NHS, na, "EDI", 2000)],
    )


@pytest.fixture
def q2_absent():
    """Q2 variant: the queried NHS number does not occur in the master data."""
    return cq(
        "Q2",
        [na],
        atoms=[atom("MVisit", ABSENT_NHS, na, "EDI", 2000)],
    )


@pytest.fixture
def q2_bob():
    """Q2 (Example 2.2): the queried NHS number occurs in the master data (Bob)."""
    return cq(
        "Q2b",
        [na],
        atoms=[atom("MVisit", BOB_NHS, na, "EDI", 2000)],
    )


@pytest.fixture
def q3_london():
    """Q3 (Example 2.2): London patients — outside the master data's scope."""
    return cq(
        "Q3",
        [na],
        atoms=[atom("MVisit", n, na, "LON", y)],
    )


@pytest.fixture
def q4():
    """Q4 (Example 2.3): names of Edinburgh patients born in 2000."""
    return cq(
        "Q4",
        [na],
        atoms=[atom("MVisit", n, na, "EDI", 2000)],
    )


@pytest.fixture
def john_only_db(visit_schema):
    """A ground instance containing only John's visit."""
    return instance(visit_schema, MVisit=[(JOHN_NHS, "John", "EDI", 2000)])


@pytest.fixture
def figure1_cinstance(visit_schema):
    """A trimmed Figure 1 c-instance.

    Row ``t2`` has a missing name (``x``) and a missing year of birth (``z``)
    with the local condition ``z ≠ 2001``; its NHS number is Bob's so the
    scenario of Example 2.3 (viable/weak but not strong completeness for Q4)
    is realisable.
    """
    table = CTable(
        visit_schema["MVisit"],
        [
            CTableRow((JOHN_NHS, "John", "EDI", 2000)),
            CTableRow((BOB_NHS, x, "EDI", z), condition(neq(z, 2001))),
        ],
    )
    return CInstance(visit_schema, {"MVisit": table})
