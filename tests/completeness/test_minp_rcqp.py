"""Tests for MINP (minimality) and RCQP (existence of complete databases)."""

import pytest

from repro.completeness.minp import (
    is_minimal_complete,
    is_minimal_ground_complete,
    is_minimal_strongly_complete,
    is_minimal_viably_complete,
    is_minimal_weakly_complete,
    is_minimal_weakly_complete_cq,
)
from repro.completeness.models import CompletenessModel
from repro.completeness.rcdp import is_relatively_complete
from repro.completeness.rcqp import (
    construct_weakly_complete_witness,
    is_query_bounded,
    rcqp,
    rcqp_bounded_search,
    strong_rcqp_with_ind_ccs,
    weak_rcqp,
)
from repro.completeness.tractable import (
    minp_data_complexity,
    rcdp_data_complexity,
    rcqp_data_complexity,
)
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import cc, projection, relation_containment_cc
from repro.ctables.cinstance import CInstance, cinstance
from repro.exceptions import CompletenessError, QueryError
from repro.queries.atoms import atom, eq
from repro.queries.cq import cq
from repro.queries.fo import fo, native_query
from repro.queries.formulas import rel
from repro.queries.fp import fixpoint_query, rule
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import empty_instance, instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema

from tests.completeness.conftest import BOB_NHS, JOHN_NHS

x, y, z, na = var("x"), var("y"), var("z"), var("na")


@pytest.fixture
def bool_schema():
    return database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))


@pytest.fixture
def bool_master():
    return MasterData(
        database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
        {"Rm": [(0,), (1,)]},
    )


class TestMinimalGroundInstances:
    def test_minimal_complete_patient_db(
        self, john_only_db, q1, patient_master, patient_ccs
    ):
        # Example 2.4 flavour: the single-tuple database answering Q1 is minimal.
        assert is_minimal_ground_complete(
            john_only_db, q1, patient_master, patient_ccs
        )

    def test_complete_but_not_minimal(
        self, visit_schema, q1, patient_master, patient_ccs
    ):
        bloated = instance(
            visit_schema,
            MVisit=[
                (JOHN_NHS, "John", "EDI", 2000),
                (BOB_NHS, "Bob", "EDI", 2000),
            ],
        )
        assert not is_minimal_ground_complete(
            bloated, q1, patient_master, patient_ccs
        )

    def test_incomplete_instance_not_minimal(
        self, visit_schema, q1, patient_master, patient_ccs
    ):
        assert not is_minimal_ground_complete(
            empty_instance(visit_schema), q1, patient_master, patient_ccs
        )

    def test_empty_instance_minimal_for_unanswerable_query(
        self, visit_schema, q2_absent, patient_master, patient_ccs
    ):
        # No Edinburgh-2000 visit for the absent NHS number can ever exist, so
        # the empty database is complete and trivially minimal.
        assert is_minimal_ground_complete(
            empty_instance(visit_schema), q2_absent, patient_master, patient_ccs
        )


class TestMinimalCInstances:
    def test_figure1_strongly_complete_but_not_minimal(
        self, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        # Example 2.4: the Figure 1 c-instance is strongly complete for Q1 but
        # not minimal — dropping Bob's row keeps it complete.
        assert not is_minimal_strongly_complete(
            figure1_cinstance, q1, patient_master, patient_ccs
        )
        trimmed = figure1_cinstance.without_row("MVisit", 1)
        assert is_minimal_strongly_complete(
            trimmed, q1, patient_master, patient_ccs
        )

    def test_viable_minimality(
        self, visit_schema, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        trimmed = figure1_cinstance.without_row("MVisit", 1)
        assert is_minimal_viably_complete(trimmed, q1, patient_master, patient_ccs)
        # The full Figure 1 c-instance is *also* minimally viably complete:
        # the valuation µ(z) = 2001 violates Bob's local condition, so his row
        # is dropped and the resulting one-tuple world is a minimal complete
        # instance (viable minimality is an existential statement).
        assert is_minimal_viably_complete(
            figure1_cinstance, q1, patient_master, patient_ccs
        )
        # A fully ground two-tuple c-instance has no such escape hatch: its
        # only world keeps both tuples and is complete but not minimal.
        bloated = CInstance.from_ground_instance(
            instance(
                visit_schema,
                MVisit=[
                    (JOHN_NHS, "John", "EDI", 2000),
                    (BOB_NHS, "Bob", "EDI", 2000),
                ],
            )
        )
        assert not is_minimal_viably_complete(
            bloated, q1, patient_master, patient_ccs
        )

    def test_unified_front_end(self, figure1_cinstance, q1, patient_master, patient_ccs):
        trimmed = figure1_cinstance.without_row("MVisit", 1)
        for model in CompletenessModel:
            decision = is_minimal_complete(
                trimmed, q1, patient_master, patient_ccs, model
            )
            assert decision.problem == "minp" and isinstance(decision.holds, bool)

    def test_fo_query_rejected(self, figure1_cinstance, patient_master, patient_ccs):
        q = fo("Q", [na], rel("MVisit", JOHN_NHS, na, "EDI", 2000))
        with pytest.raises(QueryError):
            is_minimal_strongly_complete(
                figure1_cinstance, q, patient_master, patient_ccs
            )


class TestExample55WeakMinimality:
    """Example 5.5: Lemma 4.7 fails in the weak model."""

    @pytest.fixture
    def two_rel_schema(self):
        return database_schema(schema("R1", "A"), schema("R2", "A"))

    @pytest.fixture
    def example_query(self):
        # Q(x) = ∃y, z (R1(y) ∧ R2(z) ∧ x = a)
        return cq(
            "Q",
            [x],
            atoms=[atom("R1", y), atom("R2", z)],
            comparisons=[eq(x, "a")],
        )

    @pytest.fixture
    def md(self):
        return empty_master(database_schema(schema("M", "A")))

    def test_i0_weakly_complete_but_not_minimal(self, two_rel_schema, example_query, md):
        i0 = CInstance.from_ground_instance(
            instance(two_rel_schema, R1=[(0,)], R2=[(1,)])
        )
        assert is_weakly_complete(i0, example_query, md, [])
        assert not is_minimal_weakly_complete(i0, example_query, md, [])

    def test_empty_instance_weakly_complete_and_minimal(
        self, two_rel_schema, example_query, md
    ):
        empty = CInstance.from_ground_instance(empty_instance(two_rel_schema))
        assert is_weakly_complete(empty, example_query, md, [])
        assert is_minimal_weakly_complete(empty, example_query, md, [])

    def test_lemma_57_agrees_with_direct_check(self, two_rel_schema, example_query, md):
        empty = CInstance.from_ground_instance(empty_instance(two_rel_schema))
        i0 = CInstance.from_ground_instance(
            instance(two_rel_schema, R1=[(0,)], R2=[(1,)])
        )
        assert is_minimal_weakly_complete_cq(empty, example_query, md, []).holds is True
        assert is_minimal_weakly_complete_cq(i0, example_query, md, []).holds is False

    def test_lemma_57_rejects_non_cq(self, two_rel_schema, md):
        u = ucq("U", cq("Q1", [x], atoms=[atom("R1", x)]))
        empty = CInstance.from_ground_instance(empty_instance(two_rel_schema))
        with pytest.raises(QueryError):
            is_minimal_weakly_complete_cq(empty, u, md, [])


class TestWeakMinimalitySingleton:
    def test_empty_minimal_when_certain_answer_empty(self, bool_schema, bool_master):
        # With two incomparable master tuples, no single answer is certain over
        # all extensions of the empty instance, so ∅ is weakly complete and is
        # therefore the unique minimal weakly complete database (Lemma 5.7).
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        empty = CInstance(bool_schema)
        assert is_weakly_complete(empty, q, bool_master, [constraint])
        assert is_minimal_weakly_complete_cq(empty, q, bool_master, [constraint])
        singleton = cinstance(bool_schema, R=[(0,)])
        assert not is_minimal_weakly_complete_cq(singleton, q, bool_master, [constraint])

    def test_singleton_minimal_when_empty_not_complete(self, bool_schema):
        # When the master data pins down a single admissible tuple (1,), every
        # extension of ∅ contains it, so (1,) is certain over the extensions but
        # not over Mod(∅): the empty instance is not weakly complete, and by
        # Lemma 5.7 any consistent singleton is then minimal weakly complete.
        forced_master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(1,)]},
        )
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        empty = CInstance(bool_schema)
        assert not is_weakly_complete(empty, q, forced_master, [constraint])
        singleton = cinstance(bool_schema, R=[(1,)])
        assert is_minimal_weakly_complete_cq(singleton, q, forced_master, [constraint])
        # A singleton that the CC rules out represents no world at all, so it
        # cannot be a minimal weakly complete database.
        inconsistent = cinstance(bool_schema, R=[(0,)])
        assert not is_minimal_weakly_complete_cq(
            inconsistent, q, forced_master, [constraint]
        )


class TestRCQP:
    def test_weak_rcqp_constant_true(self, q1):
        assert weak_rcqp(q1).holds is True
        fp = fixpoint_query("P", output="P", rules=[rule(atom("P", x), atom("R", x))])
        assert weak_rcqp(fp).holds is True

    def test_weak_rcqp_refuses_fo(self):
        q = fo("Q", [x], rel("R", x))
        with pytest.raises(QueryError):
            weak_rcqp(q)

    def test_weakly_complete_witness_construction(self, bool_schema, bool_master):
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        witness = construct_weakly_complete_witness(
            bool_schema, q, bool_master, [constraint]
        )
        T = CInstance.from_ground_instance(witness)
        assert is_weakly_complete(T, q, bool_master, [constraint])

    def test_query_boundedness_with_ind_ccs(self, bool_schema, bool_master):
        ind_cc = relation_containment_cc("R", bool_schema, "Rm")
        bounded = cq("Q", [x], atoms=[atom("R", x)])
        assert is_query_bounded(bounded, bool_schema, [ind_cc])
        unbound_schema = database_schema(schema("S", "A"), bool_schema["R"])
        free = cq("Q", [x], atoms=[atom("S", x)])
        assert not is_query_bounded(free, unbound_schema, [ind_cc])

    def test_strong_rcqp_with_ind_ccs(self, bool_schema, bool_master):
        ind_cc = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        assert strong_rcqp_with_ind_ccs(q, bool_schema, bool_master, [ind_cc])

    def test_strong_rcqp_requires_ind_ccs(self, bool_schema, bool_master):
        non_ind = cc(
            cq("q", [x], atoms=[atom("R", x)], comparisons=[eq(x, 1)]),
            projection("Rm", "A"),
        )
        q = cq("Q", [x], atoms=[atom("R", x)])
        with pytest.raises(QueryError):
            strong_rcqp_with_ind_ccs(q, bool_schema, bool_master, [non_ind])

    def test_rcqp_bounded_search_finds_witness(self, bool_schema, bool_master):
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)], comparisons=[eq(x, 1)])
        result = rcqp_bounded_search(q, bool_schema, bool_master, [constraint], max_size=1)
        assert result.holds
        assert is_relatively_complete(
            result.witness, q, bool_master, [constraint], CompletenessModel.STRONG
        )

    def test_rcqp_bounded_search_negative_for_unbounded_query(self):
        # A query over a relation not bounded by any CC: new answers can always
        # be added (cf. Q3 in Example 2.2), so no complete database exists and
        # the bounded search finds nothing.
        free_schema = database_schema(schema("S", "A"))
        md = empty_master(database_schema(schema("M", "A")))
        q = cq("Q", [x], atoms=[atom("S", x)])
        result = rcqp_bounded_search(q, free_schema, md, [], max_size=2)
        assert not result.holds

    def test_rcqp_front_end(self, bool_schema, bool_master):
        ind_cc = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        assert rcqp(q, bool_schema, bool_master, [ind_cc], model="strong")
        assert rcqp(q, bool_schema, bool_master, [ind_cc], model="weak")
        fp = fixpoint_query("P", output="P", rules=[rule(atom("P", x), atom("R", x))])
        with pytest.raises(QueryError):
            rcqp(fp, bool_schema, bool_master, [ind_cc], model="strong")


class TestTractableWrappers:
    def test_rcdp_data_complexity_guard(
        self, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        assert rcdp_data_complexity(
            figure1_cinstance, q1, patient_master, patient_ccs,
            CompletenessModel.STRONG,
        )
        with pytest.raises(CompletenessError):
            rcdp_data_complexity(
                figure1_cinstance, q1, patient_master, patient_ccs,
                CompletenessModel.STRONG, variable_bound=1,
            )

    def test_rcdp_data_complexity_language_guards(
        self, figure1_cinstance, patient_master, patient_ccs
    ):
        q_fo = fo("Q", [na], rel("MVisit", JOHN_NHS, na, "EDI", 2000))
        with pytest.raises(QueryError):
            rcdp_data_complexity(
                figure1_cinstance, q_fo, patient_master, patient_ccs,
                CompletenessModel.STRONG,
            )

    def test_rcqp_data_complexity(self, bool_schema, bool_master):
        ind_cc = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        assert rcqp_data_complexity(
            q, bool_schema, bool_master, [ind_cc], CompletenessModel.STRONG
        )
        assert rcqp_data_complexity(
            q, bool_schema, bool_master, [ind_cc], CompletenessModel.WEAK
        )
        non_ind = cc(
            cq("q", [x], atoms=[atom("R", x)], comparisons=[eq(x, 1)]),
            projection("Rm", "A"),
        )
        with pytest.raises(QueryError):
            rcqp_data_complexity(
                q, bool_schema, bool_master, [non_ind], CompletenessModel.STRONG
            )

    def test_minp_data_complexity(self, bool_schema, bool_master):
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        q = cq("Q", [x], atoms=[atom("R", x)])
        saturated = cinstance(bool_schema, R=[(0,), (1,)])
        assert minp_data_complexity(
            saturated, q, bool_master, [constraint], CompletenessModel.STRONG
        )
        # Weak model: with a single admissible master tuple the empty instance
        # is not weakly complete, so the consistent singleton is minimal.
        forced_master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(1,)]},
        )
        assert minp_data_complexity(
            cinstance(bool_schema, R=[(1,)]), q, forced_master, [constraint],
            CompletenessModel.WEAK,
        )

    def test_rcdp_front_end_dispatch(
        self, figure1_cinstance, q4, patient_master, patient_ccs
    ):
        assert not is_relatively_complete(
            figure1_cinstance, q4, patient_master, patient_ccs, CompletenessModel.STRONG
        )
        assert is_relatively_complete(
            figure1_cinstance, q4, patient_master, patient_ccs, CompletenessModel.WEAK
        )
        assert is_relatively_complete(
            figure1_cinstance, q4, patient_master, patient_ccs, CompletenessModel.VIABLE
        )

    def test_rcdp_front_end_language_guard(
        self, figure1_cinstance, patient_master, patient_ccs, bool_schema, bool_master
    ):
        q = native_query("native", 1, lambda inst: frozenset(), monotone=False)
        with pytest.raises(QueryError):
            is_relatively_complete(
                figure1_cinstance, q, patient_master, patient_ccs,
                CompletenessModel.STRONG,
            )
        # With allow_bounded the undecidable cell falls back to the bounded
        # checker (exercised on a small schema; a constant query is trivially
        # complete, so the heuristic verdict is positive).
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        small = cinstance(bool_schema, R=[(0,)])
        assert is_relatively_complete(
            small, q, bool_master, [constraint],
            CompletenessModel.STRONG, allow_bounded=True,
        )
