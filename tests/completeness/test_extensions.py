"""Oracle-backed coverage for ``completeness/extensions.py``.

Every enumerator in :mod:`repro.completeness.extensions` is compared against
an independent brute-force oracle built directly from ``itertools.product``
over the Adom pools plus :func:`satisfies_all` on complete instances —
no shared code paths with the enumerators under test:

* :func:`candidate_rows` — exact candidate universe, finite-domain
  restrictions, and the ``fresh_first`` reordering (same set, fresh-valued
  rows first);
* :func:`single_tuple_extensions` / :func:`has_partially_closed_extension`
  — exactly the partially closed one-tuple supersets;
* :func:`tableau_valuations` / :func:`tableau_extensions` — exactly the
  comparison-respecting valuations whose frozen tableau keeps the instance
  partially closed;
* :func:`bounded_extensions` — exactly the partially closed supersets
  adding at most ``k`` Adom tuples (CC monotonicity makes every
  intermediate partially closed, so the BFS loses nothing);
* the ``require_consistent`` interplay: deciders on an *inconsistent*
  c-instance raise by default and go vacuous with
  ``require_consistent=False``, while a consistent-but-inextensible world
  shows the extension machinery and the deciders agreeing on emptiness.
"""

from __future__ import annotations

import itertools

import pytest

from repro.completeness.consistency import (
    extensibility_active_domain,
    extension_witness,
    is_consistent,
    is_extensible,
)  # noqa: F401  (is_extensible exercised in the lazy-limit regression)
from repro.completeness.extensions import (
    bounded_extensions,
    candidate_rows,
    has_partially_closed_extension,
    single_tuple_extensions,
    tableau_extensions,
    tableau_valuations,
)
from repro.completeness.ground import is_ground_complete_bounded
from repro.completeness.strong import is_strongly_complete, is_strongly_complete_bounded
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import (
    cc,
    denial_cc,
    projection,
    relation_containment_cc,
    satisfies_all,
)
from repro.ctables.cinstance import cinstance
from repro.exceptions import BoundExceededError, InconsistentCInstanceError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import cq
from repro.queries.tableau import freeze
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import empty_instance, instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.utils.naming import is_fresh_constant

# The brute-force oracles are shared with the four-way extension-parity suite
# (tests/search/test_extension_parity.py); one definition, two consumers.
from tests.search.harness import (
    oracle_bounded_extensions,
    oracle_candidate_rows,
    oracle_single_tuple_extensions,
)

x, y = var("x"), var("y")

BOOL_PAIR_SCHEMA = database_schema(
    RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
)
MASTER_PAIR = MasterData(
    database_schema(schema("Rm", "A", "B")), {"Rm": [(0, 0), (1, 1)]}
)
BOUND_CC = cc(
    cq("bound", [x, y], atoms=[atom("R", x, y)]),
    projection("Rm", "A", "B"),
    name="r⊆rm",
)


# ---------------------------------------------------------------------------
# candidate_rows
# ---------------------------------------------------------------------------
class TestCandidateRows:
    def test_matches_oracle_universe(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        produced = list(candidate_rows(BOOL_PAIR_SCHEMA["R"], adom))
        assert produced == oracle_candidate_rows(BOOL_PAIR_SCHEMA["R"], adom)

    def test_fresh_first_reorders_but_preserves_the_set(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        base = instance(pair_schema, R=[("c", "d")])
        adom = extensibility_active_domain(base, empty_master(pair_schema), [])
        default_order = list(candidate_rows(pair_schema["R"], adom))
        fresh_order = list(candidate_rows(pair_schema["R"], adom, fresh_first=True))
        assert set(default_order) == set(fresh_order)
        # Every all-fresh row precedes every no-fresh row in fresh_first mode.
        first_no_fresh = next(
            i
            for i, row in enumerate(fresh_order)
            if not any(is_fresh_constant(value) for value in row)
        )
        assert all(
            any(is_fresh_constant(value) for value in row)
            for row in fresh_order[:first_no_fresh]
        )
        assert any(is_fresh_constant(value) for value in fresh_order[0])


# ---------------------------------------------------------------------------
# single-tuple extensions vs the oracle
# ---------------------------------------------------------------------------
class TestSingleTupleExtensions:
    @pytest.mark.parametrize("engine", ["naive", "propagating", "sat", "parallel"])
    @pytest.mark.parametrize(
        "base_rows",
        [[], [(0, 0)], [(0, 0), (1, 1)]],
    )
    def test_matches_oracle(self, base_rows, engine):
        base = instance(BOOL_PAIR_SCHEMA, R=base_rows)
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        produced = set(
            single_tuple_extensions(base, MASTER_PAIR, [BOUND_CC], adom, engine=engine)
        )
        assert produced == oracle_single_tuple_extensions(
            base, MASTER_PAIR, [BOUND_CC], adom
        )

    def test_relations_filter_restricts_target(self):
        two_schema = database_schema(schema("R", "A"), schema("S", "A"))
        base = empty_instance(two_schema)
        adom = extensibility_active_domain(base, empty_master(two_schema), [])
        only_s = list(
            single_tuple_extensions(
                base, empty_master(two_schema), [], adom, relations=["S"]
            )
        )
        assert only_s
        assert all(ext.relation("R").rows == frozenset() for ext in only_s)
        assert all(len(ext.relation("S").rows) == 1 for ext in only_s)

    def test_limit_raises_bound_exceeded(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        with pytest.raises(BoundExceededError):
            list(single_tuple_extensions(base, MASTER_PAIR, [BOUND_CC], adom, limit=1))

    def test_early_witness_beats_a_tight_limit(self):
        # Historical lazy-limit semantics: a valid extension that sits early
        # in candidate-pool order is found and returned before the budget
        # trips, even though the full universe (4) exceeds the budget (1);
        # the same probe drained to exhaustion still raises.
        base = instance(BOOL_PAIR_SCHEMA, R=[])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        first = next(
            single_tuple_extensions(base, MASTER_PAIR, [BOUND_CC], adom, limit=1)
        )
        assert (0, 0) in first["R"]
        assert has_partially_closed_extension(
            base, MASTER_PAIR, [BOUND_CC], adom, limit=1
        )
        assert is_extensible(base, MASTER_PAIR, [BOUND_CC], adom, limit=1).holds

    def test_unbudgeted_probe_engages_fresh_value_symmetry(self):
        # The unbudgeted probe searches one valuation per orbit of the
        # fresh-value permutation group (``break_symmetry=True``).  Observe
        # the engine objects it creates through the registry collector and
        # check the fresh-value ranking is actually installed — and that the
        # verdict matches the budgeted (unreduced, per-candidate) path.
        from repro.search.registry import collect_searches

        two_schema = database_schema(schema("R", "A", "B"))
        master = MasterData(
            database_schema(schema("Rm", "A", "B")), {"Rm": [("m0", "m1")]}
        )
        # Forbid rows with A = B: the constraint's variables put two fresh,
        # nothing-distinguishes-them values into the extensibility Adom.
        forbid_equal = denial_cc(
            cq("V", [], atoms=[atom("R", x, y)], comparisons=[eq(x, y)]),
            two_schema,
        )
        base = instance(two_schema, R=[("m0", "m1")])
        adom = extensibility_active_domain(base, master, [forbid_equal])
        assert len(adom.fresh_values) >= 2

        searches: list = []
        with collect_searches(searches):
            unbudgeted = has_partially_closed_extension(
                base, master, [forbid_equal], adom
            )
        assert unbudgeted is True
        ranked = [s for s in searches if getattr(s, "_fresh_rank", None)]
        assert ranked, "probe never installed a fresh-value ranking"
        assert all(
            set(s._fresh_rank) <= set(adom.fresh_values) for s in ranked
        )
        # Parity with the historical budgeted scan (same verdict, no
        # symmetry reduction there because of per-candidate accounting).
        assert has_partially_closed_extension(
            base, master, [forbid_equal], adom, limit=1000
        ) is True

    def test_has_extension_agrees_with_oracle(self):
        # The full Rm-image base admits no strict extension inside Rm.
        saturated = instance(BOOL_PAIR_SCHEMA, R=[(0, 0), (1, 1)])
        adom = extensibility_active_domain(saturated, MASTER_PAIR, [BOUND_CC])
        oracle = oracle_single_tuple_extensions(
            saturated, MASTER_PAIR, [BOUND_CC], adom
        )
        assert has_partially_closed_extension(
            saturated, MASTER_PAIR, [BOUND_CC], adom
        ) == bool(oracle)
        assert not oracle  # every remaining Boolean pair violates the bound


# ---------------------------------------------------------------------------
# tableau valuations / extensions vs the oracle
# ---------------------------------------------------------------------------
class TestTableauExtensions:
    def test_valuations_respect_comparisons_and_finite_domains(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        query = cq("Q", [x], atoms=[atom("R", x, y)], comparisons=[neq(x, y)])
        produced = list(tableau_valuations(query, adom, base))
        # Oracle: x and y range over the Boolean attribute domains; x ≠ y.
        expected = [
            {x: a, y: b} for a in (0, 1) for b in (0, 1) if a != b
        ]
        assert sorted(produced, key=repr) == sorted(expected, key=repr)

    def test_extensions_match_oracle(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        query = cq("Q", [x, y], atoms=[atom("R", x, y)])
        produced = {
            extended
            for _valuation, extended in tableau_extensions(
                base, query, MASTER_PAIR, [BOUND_CC], adom
            )
        }
        expected = set()
        for valuation in tableau_valuations(query, adom, base):
            extended = base.with_tuples(freeze(query.atoms, valuation))
            if satisfies_all(extended, MASTER_PAIR, [BOUND_CC]):
                expected.add(extended)
        assert produced == expected
        # Non-strict extensions are included: ν(T_Q) ⊆ I yields I itself.
        assert base in produced

    def test_limit_raises_bound_exceeded(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        query = cq("Q", [x, y], atoms=[atom("R", x, y)])
        with pytest.raises(BoundExceededError):
            list(
                tableau_extensions(
                    base, query, MASTER_PAIR, [BOUND_CC], adom, limit=1
                )
            )

    def test_early_witness_beats_a_tight_limit(self):
        # Lazy-limit semantics for the tableau route: the ν = {x↦0, y↦0}
        # valuation is first in enumeration order and partially closed, so a
        # budget of 1 still yields it; draining past the budget raises.
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        query = cq("Q", [x, y], atoms=[atom("R", x, y)])
        valuation, extended = next(
            tableau_extensions(base, query, MASTER_PAIR, [BOUND_CC], adom, limit=1)
        )
        assert valuation == {x: 0, y: 0}
        assert extended == base


# ---------------------------------------------------------------------------
# bounded extensions vs the oracle
# ---------------------------------------------------------------------------
class TestBoundedExtensions:
    @pytest.mark.parametrize("engine", ["naive", "propagating", "sat", "parallel"])
    @pytest.mark.parametrize("max_new_tuples", [1, 2])
    def test_matches_oracle(self, max_new_tuples, engine):
        base = instance(BOOL_PAIR_SCHEMA, R=[])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        produced = set(
            bounded_extensions(
                base, MASTER_PAIR, [BOUND_CC], adom,
                max_new_tuples=max_new_tuples, engine=engine,
            )
        )
        assert produced == oracle_bounded_extensions(
            base, MASTER_PAIR, [BOUND_CC], adom, max_new_tuples
        )

    def test_yields_each_extension_once(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[])
        adom = extensibility_active_domain(base, MASTER_PAIR, [BOUND_CC])
        produced = list(
            bounded_extensions(base, MASTER_PAIR, [BOUND_CC], adom, max_new_tuples=2)
        )
        assert len(produced) == len(set(produced))

    def test_limit_raises_bound_exceeded(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        base = instance(pair_schema, R=[("c", "d")])
        adom = extensibility_active_domain(base, empty_master(pair_schema), [])
        # 3 Adom values -> 8 unconstrained one-tuple extensions; a budget of
        # 3 inspected instances must trip.
        with pytest.raises(BoundExceededError):
            list(
                bounded_extensions(
                    base, empty_master(pair_schema), [], adom,
                    max_new_tuples=2, limit=3,
                )
            )


# ---------------------------------------------------------------------------
# regression: a bounded-extension budget hit exactly at the last candidate
# ---------------------------------------------------------------------------
class TestBoundedLimitExactRegression:
    """``limit`` counts *distinct* extensions, so an exact budget completes.

    Before the fix, ``bounded_extensions`` charged duplicate extensions (the
    same 2-tuple superset reached along both addition orders) against the
    budget, so a ``limit`` equal to the number of distinct extensions
    spuriously raised :class:`BoundExceededError` on a trailing duplicate —
    and that raise escaped the bounded deciders *before* they could return
    their ``require_consistent``-aware verdict.
    """

    BOOL_UNARY = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))

    def _context(self):
        base = empty_instance(self.BOOL_UNARY)
        master = empty_master(database_schema(schema("M", "A")))
        adom = extensibility_active_domain(base, master, [])
        return base, master, adom

    def test_exact_budget_completes_despite_trailing_duplicate(self):
        base, master, adom = self._context()
        # Distinct extensions of ∅ by ≤ 2 Boolean tuples: {0}, {1}, {0,1};
        # the old per-candidate counter saw 4 (the duplicate {1,0} order).
        produced = list(
            bounded_extensions(base, master, [], adom, max_new_tuples=2, limit=3)
        )
        assert len(produced) == 3
        assert produced == list(dict.fromkeys(produced))
        with pytest.raises(BoundExceededError):
            list(bounded_extensions(base, master, [], adom, max_new_tuples=2, limit=2))

    def test_bounded_decider_survives_an_exact_budget(self):
        base, master, adom = self._context()
        # A constant-answer query: no extension changes it, so the decider
        # must drain all three distinct extensions — exactly the budget.
        constant_query = cq("Q", [], comparisons=[eq(1, 1)])
        exact = is_ground_complete_bounded(
            base, constant_query, master, [], max_new_tuples=2, adom=adom, limit=3
        )
        unlimited = is_ground_complete_bounded(
            base, constant_query, master, [], max_new_tuples=2, adom=adom
        )
        assert exact.holds is True
        assert exact == unlimited

    def test_strong_bounded_with_exact_budget_and_require_consistent(self):
        _base, master, _adom = self._context()
        constant_query = cq("Q", [], comparisons=[eq(1, 1)])
        T = cinstance(self.BOOL_UNARY)  # one world: the empty instance
        verdict = is_strongly_complete_bounded(
            T, constant_query, master, [], max_new_tuples=2, limit=3
        )
        assert verdict.holds is True
        # The flag keeps working when the budget is tight: an inconsistent
        # input still raises by default and goes vacuous with the flag off.
        forbid_all = denial_cc(cq("forbid", [x], atoms=[atom("R", x)]))
        bad = cinstance(self.BOOL_UNARY, R=[(x,)])
        with pytest.raises(InconsistentCInstanceError):
            is_strongly_complete_bounded(
                bad, constant_query, master, [forbid_all],
                max_new_tuples=2, limit=3,
            )
        assert is_strongly_complete_bounded(
            bad, constant_query, master, [forbid_all],
            max_new_tuples=2, limit=3, require_consistent=False,
        ).holds is True


# ---------------------------------------------------------------------------
# require_consistent interplay with the extension machinery
# ---------------------------------------------------------------------------
class TestRequireConsistentInterplay:
    @pytest.fixture
    def inconsistent(self):
        """A c-instance with no model at all (every R tuple is forbidden)."""
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        forbid_all = denial_cc(cq("q", [x], atoms=[atom("R", x)]))
        T = cinstance(bool_schema, R=[(x,)])
        master = empty_master(database_schema(schema("M", "A")))
        return T, master, [forbid_all]

    @pytest.mark.parametrize("engine", ["naive", "propagating", "sat", "parallel"])
    def test_deciders_raise_then_go_vacuous(self, inconsistent, engine):
        T, master, constraints = inconsistent
        assert not is_consistent(T, master, constraints, engine=engine)
        query = cq("Q", [x], atoms=[atom("R", x)])
        for decider in (is_strongly_complete, is_weakly_complete):
            with pytest.raises(InconsistentCInstanceError):
                decider(T, query, master, constraints, engine=engine)
            assert decider(
                T, query, master, constraints,
                require_consistent=False, engine=engine,
            )

    def test_inextensible_world_of_a_consistent_cinstance(self):
        # R bounded by a single-tuple master: the world {(1,1)} saturates the
        # bound, so Ext(I) = ∅ — extensibility and the oracle agree.
        master = MasterData(
            database_schema(
                RelationSchema("Rm", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
            ),
            {"Rm": [(1, 1)]},
        )
        constraint = relation_containment_cc("R", BOOL_PAIR_SCHEMA, "Rm")
        world = instance(BOOL_PAIR_SCHEMA, R=[(1, 1)])
        adom = extensibility_active_domain(world, master, [constraint])
        assert not oracle_single_tuple_extensions(world, master, [constraint], adom)
        assert not is_extensible(world, master, [constraint])
        assert extension_witness(world, master, [constraint]) is None

    def test_extension_witness_is_partially_closed_superset(self):
        base = instance(BOOL_PAIR_SCHEMA, R=[(0, 0)])
        witness = extension_witness(base, MASTER_PAIR, [BOUND_CC])
        assert witness is not None
        assert witness.size == base.size + 1
        assert satisfies_all(witness, MASTER_PAIR, [BOUND_CC])
        assert base.relation("R").rows < witness.relation("R").rows

    def test_weak_decider_consumes_extension_family(self):
        # A base world with extensions: the weak decider's verdict must match
        # a manual check over the oracle's extension family for a point query.
        base_cinstance = cinstance(BOOL_PAIR_SCHEMA, R=[(1, 1)])
        query = cq("Q", [x], atoms=[atom("R", x, x)])
        verdict = is_weakly_complete(
            base_cinstance, query, MASTER_PAIR, [BOUND_CC]
        )
        # (0,0) can always be added, adding answer 0: not weakly complete.
        assert verdict.holds is False
