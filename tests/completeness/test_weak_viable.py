"""Tests for the weak and viable completeness models (Sections 5 and 6)."""

import pytest

from repro.completeness.certain import (
    certain_answer_over_extensions,
    certain_answer_over_models,
)
from repro.completeness.viable import find_viable_witness, is_viably_complete
from repro.completeness.weak import (
    is_weakly_complete,
    is_weakly_complete_bounded,
    weak_completeness_report,
)
from repro.constraints.containment import relation_containment_cc
from repro.ctables.cinstance import CInstance, cinstance
from repro.exceptions import InconsistentCInstanceError, QueryError
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.fo import native_query
from repro.queries.fp import fixpoint_query, rule
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import empty_instance, instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema

from tests.completeness.conftest import BOB_NHS, JOHN_NHS

x, y, na = var("x"), var("y"), var("na")


class TestWeakModelPatients:
    """Example 2.3: the Figure 1 c-instance under Q1 and Q4."""

    def test_weakly_complete_for_q4(
        self, figure1_cinstance, q4, patient_master, patient_ccs
    ):
        report = weak_completeness_report(
            figure1_cinstance, q4, patient_master, patient_ccs
        )
        # The certain answer over the possible worlds is exactly John: Bob's row
        # only matches Q4 in the worlds where his year of birth is 2000.
        assert report.details.certain_over_models == {("John",)}
        assert report.holds

    def test_weakly_complete_for_q1(
        self, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        assert is_weakly_complete(figure1_cinstance, q1, patient_master, patient_ccs)

    def test_strong_implies_weak_and_viable(
        self, figure1_cinstance, q1, patient_master, patient_ccs
    ):
        # Observation (a) after Example 2.3: strong ⟹ weak and viable.
        from repro.completeness.strong import is_strongly_complete

        assert is_strongly_complete(figure1_cinstance, q1, patient_master, patient_ccs)
        assert is_weakly_complete(figure1_cinstance, q1, patient_master, patient_ccs)
        assert is_viably_complete(figure1_cinstance, q1, patient_master, patient_ccs)


class TestViableModelPatients:
    def test_viably_complete_for_q4(
        self, figure1_cinstance, q4, patient_master, patient_ccs
    ):
        # Example 2.3: instantiating Bob's missing year of birth as 2000 yields a
        # relatively complete world, so the c-instance is viably complete.  (The
        # search may return a different complete world first, e.g. one in which
        # Bob's year of birth is not 2000 and the FD blocks adding his visit.)
        witness = find_viable_witness(
            figure1_cinstance, q4, patient_master, patient_ccs
        )
        assert witness is not None
        assert is_viably_complete(figure1_cinstance, q4, patient_master, patient_ccs)

    def test_bob_valuation_is_a_viable_world(
        self, visit_schema, q4, patient_master, patient_ccs
    ):
        # The specific valuation the paper uses (µ(x) = Bob, µ(z) = 2000) is a
        # relatively complete ground instance for Q4.
        from repro.completeness.ground import is_ground_complete
        from repro.relational.instance import instance

        bob_world = instance(
            visit_schema,
            MVisit=[
                (JOHN_NHS, "John", "EDI", 2000),
                (BOB_NHS, "Bob", "EDI", 2000),
            ],
        )
        assert is_ground_complete(bob_world, q4, patient_master, patient_ccs)

    def test_not_strongly_but_viably_complete(
        self, figure1_cinstance, q4, patient_master, patient_ccs
    ):
        from repro.completeness.strong import is_strongly_complete

        assert not is_strongly_complete(
            figure1_cinstance, q4, patient_master, patient_ccs
        )
        assert is_viably_complete(figure1_cinstance, q4, patient_master, patient_ccs)

    def test_ground_viable_equals_ground_strong(
        self, john_only_db, q1, patient_master, patient_ccs
    ):
        # Observation (b): for ground instances viable and strong coincide.
        T = CInstance.from_ground_instance(john_only_db)
        from repro.completeness.strong import is_strongly_complete

        assert is_viably_complete(T, q1, patient_master, patient_ccs) == \
            is_strongly_complete(T, q1, patient_master, patient_ccs)


class TestCertainAnswers:
    @pytest.fixture
    def bool_schema(self):
        return database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))

    @pytest.fixture
    def bool_master(self):
        return MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(0,), (1,)]},
        )

    def test_certain_answer_over_models(self, bool_schema, bool_master):
        T = cinstance(bool_schema, R=[(x,), (0,)])
        q = cq("Q", [y], atoms=[atom("R", y)])
        certain = certain_answer_over_models(T, q, bool_master, [])
        # (0,) is in every world; the value of x varies.
        assert certain == {(0,)}

    def test_certain_answer_over_extensions(self, bool_schema, bool_master):
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        T = cinstance(bool_schema, R=[(0,)])
        q = cq("Q", [y], atoms=[atom("R", y)])
        result = certain_answer_over_extensions(T, q, bool_master, [constraint])
        # The only possible extension is {(0,), (1,)}, so the certain answer
        # over extensions contains both tuples — strictly more than Q(T), i.e.
        # T is not weakly complete for Q.
        assert result.answers == {(0,), (1,)}
        assert not result.family_is_empty
        assert not is_weakly_complete(T, q, bool_master, [constraint])

    def test_extension_family_empty(self, bool_schema, bool_master):
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        T = cinstance(bool_schema, R=[(0,), (1,)])
        q = cq("Q", [y], atoms=[atom("R", y)])
        result = certain_answer_over_extensions(T, q, bool_master, [constraint])
        assert result.family_is_empty
        assert is_weakly_complete(T, q, bool_master, [constraint])

    def test_inconsistent_cinstance_raises(self, bool_schema, bool_master):
        from repro.constraints.containment import denial_cc
        from repro.queries.cq import boolean_cq

        forbid_all = denial_cc(boolean_cq("q", atoms=[atom("R", x)]))
        T = cinstance(bool_schema, R=[(0,)])
        q = cq("Q", [y], atoms=[atom("R", y)])
        with pytest.raises(InconsistentCInstanceError):
            certain_answer_over_models(T, q, bool_master, [forbid_all])
        with pytest.raises(InconsistentCInstanceError):
            is_weakly_complete(T, q, bool_master, [forbid_all])

    def test_non_monotone_query_rejected(self, bool_schema, bool_master):
        q = native_query("native", 1, lambda inst: frozenset(inst["R"].rows))
        T = cinstance(bool_schema, R=[(0,)])
        with pytest.raises(QueryError):
            certain_answer_over_extensions(T, q, bool_master, [])
        with pytest.raises(QueryError):
            is_weakly_complete(T, q, bool_master, [])


class TestWeakModelFP:
    """RCDPʷ is decidable for FP (Theorem 5.1) — exercised on reachability."""

    @pytest.fixture
    def edge_schema(self):
        return database_schema(
            RelationSchema("E", [("src", BOOLEAN_DOMAIN), ("dst", BOOLEAN_DOMAIN)])
        )

    @pytest.fixture
    def edge_master(self):
        return MasterData(
            database_schema(
                RelationSchema("Em", [("src", BOOLEAN_DOMAIN), ("dst", BOOLEAN_DOMAIN)])
            ),
            {"Em": [(0, 0), (0, 1), (1, 1)]},
        )

    @pytest.fixture
    def reach_query(self):
        return fixpoint_query(
            "Reach",
            output="T",
            rules=[
                rule(atom("T", x, y), atom("E", x, y)),
                rule(atom("T", x, var("z")), atom("T", x, y), atom("E", y, var("z"))),
            ],
        )

    def test_saturated_graph_weakly_complete(self, edge_schema, edge_master, reach_query):
        constraint = relation_containment_cc("E", edge_schema, "Em")
        saturated = CInstance.from_ground_instance(
            instance(edge_schema, E=[(0, 0), (0, 1), (1, 1)])
        )
        assert is_weakly_complete(saturated, reach_query, edge_master, [constraint])

    def test_partial_graph_weakly_complete_despite_missing_edges(
        self, edge_schema, edge_master, reach_query
    ):
        # With two incomparable candidate edges ((0,1) and (1,1)) neither is
        # certain over all extensions, so the certain answer over extensions
        # collapses back to the answer on the partial graph: weakly complete.
        constraint = relation_containment_cc("E", edge_schema, "Em")
        partial = CInstance.from_ground_instance(instance(edge_schema, E=[(0, 0)]))
        report = weak_completeness_report(partial, reach_query, edge_master, [constraint])
        assert report.holds

    def test_partial_graph_not_weakly_complete(self, edge_schema, reach_query):
        # When the master data pins down a single possible new edge (0,1), every
        # partially closed extension contains it, so (0,1) is certain over the
        # extensions but absent from the partial graph: not weakly complete.
        forced_master = MasterData(
            database_schema(
                RelationSchema("Em", [("src", BOOLEAN_DOMAIN), ("dst", BOOLEAN_DOMAIN)])
            ),
            {"Em": [(0, 0), (0, 1)]},
        )
        constraint = relation_containment_cc("E", edge_schema, "Em")
        partial = CInstance.from_ground_instance(instance(edge_schema, E=[(0, 0)]))
        report = weak_completeness_report(partial, reach_query, forced_master, [constraint])
        assert report.details.certain_over_extensions == {(0, 0), (0, 1)}
        assert not report.holds


class TestExample53:
    """Example 5.3: weak-model RCQP differs for ground instances and c-instances."""

    @pytest.fixture
    def two_relation_schema(self):
        return database_schema(schema("R1", "A"), schema("R2", "A"))

    @pytest.fixture
    def subset_query(self):
        def run(inst):
            if set(inst["R1"].rows) <= set(inst["R2"].rows):
                return frozenset({("a",)})
            return frozenset({("b",)})

        return native_query("subset", 1, run, monotone=False)

    def test_ground_instances_not_weakly_complete(self, two_relation_schema, subset_query):
        md = empty_master(database_schema(schema("M", "A")))
        empty = CInstance.from_ground_instance(empty_instance(two_relation_schema))
        assert not is_weakly_complete_bounded(empty, subset_query, md, [])

    def test_all_variable_cinstance_weakly_complete(self, two_relation_schema, subset_query):
        md = empty_master(database_schema(schema("M", "A")))
        T = cinstance(two_relation_schema, R1=[(x,)], R2=[(y,)])
        assert is_weakly_complete_bounded(T, subset_query, md, [])
