"""Tests for classical dependencies and their satisfaction."""

import pytest

from repro.constraints.dependencies import (
    WILDCARD,
    DenialConstraint,
    cfd,
    fd,
    ind,
    satisfies_dependencies,
    schema_has_relation,
)
from repro.exceptions import ConstraintError
from repro.queries.atoms import atom, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.instance import instance
from repro.relational.schema import database_schema, schema

x, y = var("x"), var("y")


@pytest.fixture
def emp_schema():
    return database_schema(
        schema("Emp", "id", "name", "dept", "city"),
        schema("Dept", "dept", "manager"),
    )


class TestFunctionalDependency:
    def test_satisfied(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI"), (2, "Bob", "CS", "EDI")],
        )
        assert fd("Emp", "id", "name").is_satisfied(db)
        assert fd("Emp", "dept", "city").is_satisfied(db)

    def test_violated(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI"), (1, "Anne", "CS", "EDI")],
        )
        dependency = fd("Emp", "id", "name")
        assert not dependency.is_satisfied(db)
        assert len(dependency.violating_pairs(db)) == 1

    def test_composite_sides(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI"), (2, "Ann", "CS", "GLA")],
        )
        assert fd("Emp", ["name", "dept"], ["city"]).is_satisfied(db) is False

    def test_empty_rhs_rejected(self):
        with pytest.raises(ConstraintError):
            fd("Emp", "id", [])

    def test_string_attribute_lists(self):
        dependency = fd("Emp", "id dept", "name, city")
        assert dependency.lhs == ("id", "dept")
        assert dependency.rhs == ("name", "city")


class TestInclusionDependency:
    def test_satisfied(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI")],
            Dept=[("CS", "Carol"), ("Math", "Dave")],
        )
        assert ind("Emp", "dept", "Dept", "dept").is_satisfied(db)

    def test_violated(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "Physics", "EDI")],
            Dept=[("CS", "Carol")],
        )
        assert not ind("Emp", "dept", "Dept", "dept").is_satisfied(db)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            ind("Emp", ["dept", "city"], "Dept", ["dept"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(ConstraintError):
            ind("Emp", [], "Dept", [])


class TestConditionalFunctionalDependency:
    def test_pattern_restricts_scope(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[
                (1, "Ann", "CS", "EDI"),
                (2, "Bob", "CS", "GLA"),   # violates dept→city only within pattern
                (3, "Eve", "Math", "EDI"),
                (4, "Joe", "Math", "GLA"),
            ],
        )
        # Unconditional FD dept → city is violated...
        assert not fd("Emp", "dept", "city").is_satisfied(db)
        # ... and so is the CFD restricted to dept = CS ...
        assert not cfd("Emp", "dept", "city", pattern=("CS", WILDCARD)).is_satisfied(db)
        # ... but the CFD restricted to a department with consistent cities holds.
        consistent = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI"), (3, "Eve", "Math", "EDI"), (4, "Joe", "Math", "GLA")],
        )
        assert cfd("Emp", "dept", "city", pattern=("CS", WILDCARD)).is_satisfied(consistent)

    def test_constant_rhs_pattern(self, emp_schema):
        db_ok = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI")])
        db_bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "GLA")])
        dependency = cfd("Emp", "dept", "city", pattern=("CS", "EDI"))
        assert dependency.is_satisfied(db_ok)
        assert not dependency.is_satisfied(db_bad)

    def test_default_pattern_is_plain_fd(self, emp_schema):
        db = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (1, "Ann", "CS", "GLA")])
        assert not cfd("Emp", "id", "city").is_satisfied(db)

    def test_pattern_length_checked(self):
        with pytest.raises(ConstraintError):
            cfd("Emp", "dept", "city", pattern=("CS",))


class TestDenialConstraint:
    def test_boolean_query_required(self):
        with pytest.raises(ConstraintError):
            DenialConstraint(cq("q", [x], atoms=[atom("Emp", x, y, var("d"), var("c"))]))

    def test_satisfaction(self, emp_schema):
        forbid = DenialConstraint(
            boolean_cq(
                "same_id_diff_name",
                atoms=[
                    atom("Emp", x, var("n1"), var("d1"), var("c1")),
                    atom("Emp", x, var("n2"), var("d2"), var("c2")),
                ],
                comparisons=[neq(var("n1"), var("n2"))],
            )
        )
        ok = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI")])
        bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (1, "Anne", "CS", "EDI")])
        assert forbid.is_satisfied(ok)
        assert not forbid.is_satisfied(bad)


class TestDependencyCollections:
    def test_satisfies_dependencies(self, emp_schema):
        db = instance(
            emp_schema,
            Emp=[(1, "Ann", "CS", "EDI")],
            Dept=[("CS", "Carol")],
        )
        deps = [fd("Emp", "id", "name"), ind("Emp", "dept", "Dept", "dept")]
        assert satisfies_dependencies(db, deps)

    def test_schema_has_relation(self, emp_schema):
        assert schema_has_relation(emp_schema, fd("Emp", "id", "name"))
        assert schema_has_relation(emp_schema, ind("Emp", "dept", "Dept", "dept"))
        assert not schema_has_relation(emp_schema, fd("Other", "a", "b"))
        denial = DenialConstraint(boolean_cq("q", atoms=[atom("Emp", x, y, var("d"), var("c"))]))
        assert schema_has_relation(emp_schema, denial)
