"""Tests for containment constraints (Example 2.1 style)."""

import pytest

from repro.constraints.containment import (
    ContainmentConstraint,
    EmptyRHS,
    cc,
    constraint_set_constants,
    constraint_set_variables,
    denial_cc,
    projection,
    relation_containment_cc,
    satisfies_all,
    violated_constraints,
)
from repro.exceptions import ConstraintError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.instance import instance
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import database_schema, schema

n, na, c, y, g, d, di, i = (
    var("n"), var("na"), var("c"), var("y"), var("g"), var("d"), var("di"), var("i"),
)


@pytest.fixture
def visit_schema():
    return database_schema(
        schema("MVisit", "NHS", "name", "city", "yob", "GD", "Date", "Diag", "DrID")
    )


@pytest.fixture
def master_schema():
    return database_schema(schema("Patientm", "NHS", "name", "yob", "zip", "GD"))


@pytest.fixture
def master(master_schema):
    return MasterData(
        master_schema,
        {
            "Patientm": [
                ("915-15-335", "John", 2000, "EH8 9AB", "M"),
                ("915-15-336", "Bob", 2000, "EH8 9AB", "M"),
            ]
        },
    )


@pytest.fixture
def edinburgh_cc(visit_schema):
    """The CC of Example 2.1: Edinburgh patients born in 2000 are bounded by master."""
    query = cq(
        "q2000",
        [n, na, y, g],
        atoms=[atom("MVisit", n, na, c, y, g, d, di, i)],
        comparisons=[eq(c, "EDI"), eq(y, 2000)],
    )
    return cc(query, projection("Patientm", "NHS", "name", "yob", "GD"), name="cc2000")


class TestProjectionQuery:
    def test_projection_evaluation(self, master):
        p = projection("Patientm", "NHS", "yob")
        assert ("915-15-335", 2000) in p.evaluate(master)

    def test_full_relation_projection(self, master):
        p = projection("Patientm")
        assert p.attributes is None
        assert len(p.evaluate(master)) == 2

    def test_empty_rhs(self, master):
        assert EmptyRHS().evaluate(master) == frozenset()


class TestContainmentConstraintSatisfaction:
    def test_satisfied_when_all_answers_covered(self, visit_schema, master, edinburgh_cc):
        db = instance(
            visit_schema,
            MVisit=[
                ("915-15-335", "John", "EDI", 2000, "M", "15/03/2015", "Flu", "01"),
                ("915-15-400", "Zoe", "LON", 2000, "F", "15/03/2015", "Flu", "02"),
            ],
        )
        assert edinburgh_cc.is_satisfied(db, master)

    def test_violated_when_answer_not_in_master(self, visit_schema, master, edinburgh_cc):
        db = instance(
            visit_schema,
            MVisit=[("915-15-999", "Ghost", "EDI", 2000, "F", "15/03/2015", "Flu", "01")],
        )
        assert not edinburgh_cc.is_satisfied(db, master)
        assert edinburgh_cc.violations(db, master) == {("915-15-999", "Ghost", 2000, "F")}

    def test_satisfies_all_and_violated_constraints(self, visit_schema, master, edinburgh_cc):
        good = instance(visit_schema)
        bad = instance(
            visit_schema,
            MVisit=[("915-15-999", "Ghost", "EDI", 2000, "F", "15/03/2015", "Flu", "01")],
        )
        assert satisfies_all(good, master, [edinburgh_cc])
        assert violated_constraints(bad, master, [edinburgh_cc]) == [edinburgh_cc]

    def test_denial_cc(self, visit_schema, master):
        # Forbid two visits with the same NHS number but different names (the FD of Example 2.1).
        n2, na2 = var("n2"), var("na2")
        query = boolean_cq(
            "qname",
            atoms=[
                atom("MVisit", n, na, c, y, g, d, di, i),
                atom("MVisit", n, na2, var("c2"), var("y2"), var("g2"), var("d2"), var("di2"), var("i2")),
            ],
            comparisons=[neq(na, na2)],
        )
        constraint = denial_cc(query, name="fd_name")
        consistent = instance(
            visit_schema,
            MVisit=[
                ("915-15-335", "John", "EDI", 2000, "M", "15/03/2015", "Flu", "01"),
                ("915-15-335", "John", "EDI", 2000, "M", "16/03/2015", "Cold", "02"),
            ],
        )
        inconsistent = instance(
            visit_schema,
            MVisit=[
                ("915-15-335", "John", "EDI", 2000, "M", "15/03/2015", "Flu", "01"),
                ("915-15-335", "Johnny", "EDI", 2000, "M", "16/03/2015", "Cold", "02"),
            ],
        )
        assert constraint.is_satisfied(consistent, master)
        assert not constraint.is_satisfied(inconsistent, master)

    def test_cq_right_hand_side(self, visit_schema, master_schema):
        master = MasterData(master_schema, {"Patientm": [("1", "Ann", 1999, "Z", "F")]})
        left = cq("l", [n], atoms=[atom("MVisit", n, na, c, y, g, d, di, i)])
        right = cq("r", [var("m")], atoms=[atom("Patientm", var("m"), var("b"), var("yy"), var("z"), var("gg"))])
        constraint = cc(left, right)
        ok = instance(
            visit_schema,
            MVisit=[("1", "Ann", "EDI", 1999, "F", "d", "flu", "01")],
        )
        bad = instance(
            visit_schema,
            MVisit=[("2", "Eve", "EDI", 1999, "F", "d", "flu", "01")],
        )
        assert constraint.is_satisfied(ok, master)
        assert not constraint.is_satisfied(bad, master)

    def test_arity_mismatch_rejected(self, master_schema):
        left = cq("l", [var("a"), var("b")], atoms=[atom("R", var("a"), var("b"))])
        right = cq("r", [var("m")], atoms=[atom("Patientm", var("m"), var("x1"), var("x2"), var("x3"), var("x4"))])
        with pytest.raises(ConstraintError):
            cc(left, right)
        with pytest.raises(ConstraintError):
            cc(left, projection("Patientm", "NHS"))


class TestConstraintShapes:
    def test_relation_containment_cc(self, visit_schema, master):
        # MVisit has arity 8 while Patientm has arity 5, so build a same-arity example.
        db = database_schema(schema("R", "A", "B"))
        md = MasterData(database_schema(schema("Rm", "A", "B")), {"Rm": [(1, 2)]})
        constraint = relation_containment_cc("R", db, "Rm")
        assert constraint.is_satisfied(instance(db, R=[(1, 2)]), md)
        assert not constraint.is_satisfied(instance(db, R=[(3, 4)]), md)
        assert constraint.is_inclusion_dependency()

    def test_ind_shape_detection(self, visit_schema):
        proj_query = cq(
            "p",
            [n],
            atoms=[atom("MVisit", n, na, c, y, g, d, di, i)],
        )
        assert cc(proj_query, projection("Patientm", "NHS")).is_inclusion_dependency()
        with_comparison = cq(
            "p2",
            [n],
            atoms=[atom("MVisit", n, na, c, y, g, d, di, i)],
            comparisons=[eq(c, "EDI")],
        )
        assert not cc(with_comparison, projection("Patientm", "NHS")).is_inclusion_dependency()

    def test_constants_and_variables_of_constraint_sets(self, edinburgh_cc):
        assert "EDI" in constraint_set_constants([edinburgh_cc])
        assert 2000 in constraint_set_constants([edinburgh_cc])
        assert n in constraint_set_variables([edinburgh_cc])

    def test_empty_master_makes_empty_rhs_trivial(self, visit_schema, master_schema):
        md = empty_master(master_schema)
        query = boolean_cq("q", atoms=[atom("MVisit", n, na, c, y, g, d, di, i)])
        constraint = ContainmentConstraint(query, EmptyRHS())
        assert constraint.is_satisfied(instance(visit_schema), md)
