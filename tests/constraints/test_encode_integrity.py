"""Tests for dependency → CC encodings and integrity reasoning."""

import pytest

from repro.constraints.containment import satisfies_all
from repro.constraints.dependencies import DenialConstraint, cfd, fd, ind
from repro.constraints.encode import (
    cfd_as_ccs,
    denial_as_cc,
    encode_dependencies,
    fd_as_ccs,
    ind_to_master_as_cc,
)
from repro.constraints.integrity import (
    attribute_closure,
    chase_fd_ind,
    counterexample_instance,
    fd_implies,
    is_key,
    minimal_keys,
)
from repro.exceptions import ConstraintError
from repro.queries.atoms import atom, neq
from repro.queries.cq import boolean_cq
from repro.queries.terms import var
from repro.relational.instance import instance
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema


@pytest.fixture
def emp_schema():
    return database_schema(schema("Emp", "id", "name", "dept", "city"))


@pytest.fixture
def master(emp_schema):
    master_schema = database_schema(schema("Deptm", "dept"))
    return MasterData(master_schema, {"Deptm": [("CS",), ("Math",)]})


class TestFDEncoding:
    def test_fd_as_ccs_shape(self, emp_schema):
        ccs = fd_as_ccs(fd("Emp", "id", ["name", "city"]), emp_schema)
        assert len(ccs) == 2
        assert all(c.query.is_boolean for c in ccs)

    def test_cc_satisfaction_mirrors_fd(self, emp_schema, master):
        dependency = fd("Emp", "id", "name")
        ccs = fd_as_ccs(dependency, emp_schema)
        good = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (2, "Bob", "CS", "EDI")])
        bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (1, "Anne", "CS", "EDI")])
        assert dependency.is_satisfied(good) == satisfies_all(good, master, ccs)
        assert dependency.is_satisfied(bad) == satisfies_all(bad, master, ccs)
        assert not satisfies_all(bad, master, ccs)


class TestCFDEncoding:
    def test_cfd_with_constant_rhs(self, emp_schema, master):
        dependency = cfd("Emp", "dept", "city", pattern=("CS", "EDI"))
        ccs = cfd_as_ccs(dependency, emp_schema)
        good = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (2, "Bob", "Math", "GLA")])
        bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "GLA")])
        assert dependency.is_satisfied(good) == satisfies_all(good, master, ccs) is True
        assert dependency.is_satisfied(bad) == satisfies_all(bad, master, ccs) is False

    def test_cfd_with_wildcard_rhs(self, emp_schema, master):
        dependency = cfd("Emp", "dept", "city")
        ccs = cfd_as_ccs(dependency, emp_schema)
        bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (2, "Bob", "CS", "GLA")])
        assert not satisfies_all(bad, master, ccs)
        assert dependency.is_satisfied(bad) is False


class TestOtherEncodings:
    def test_denial_as_cc(self, emp_schema, master):
        x = var("x")
        forbidden = DenialConstraint(
            boolean_cq(
                "dup",
                atoms=[
                    atom("Emp", x, var("n1"), var("d1"), var("c1")),
                    atom("Emp", x, var("n2"), var("d2"), var("c2")),
                ],
                comparisons=[neq(var("n1"), var("n2"))],
            )
        )
        constraint = denial_as_cc(forbidden)
        bad = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI"), (1, "Anne", "CS", "EDI")])
        assert forbidden.is_satisfied(bad) == constraint.is_satisfied(bad, master) is False

    def test_ind_into_master(self, emp_schema, master):
        dependency = ind("Emp", "dept", "Deptm", "dept")
        constraint = ind_to_master_as_cc(dependency, emp_schema, master.schema)
        assert constraint.is_inclusion_dependency()
        ok = instance(emp_schema, Emp=[(1, "Ann", "CS", "EDI")])
        bad = instance(emp_schema, Emp=[(1, "Ann", "Physics", "EDI")])
        assert constraint.is_satisfied(ok, master)
        assert not constraint.is_satisfied(bad, master)

    def test_ind_requires_master_schema(self, emp_schema):
        with pytest.raises(ConstraintError):
            encode_dependencies([ind("Emp", "dept", "Deptm", "dept")], emp_schema)

    def test_encode_mixed_collection(self, emp_schema, master):
        constraints = encode_dependencies(
            [fd("Emp", "id", "name"), ind("Emp", "dept", "Deptm", "dept")],
            emp_schema,
            master_schema=master.schema,
        )
        assert len(constraints) == 2

    def test_encode_unknown_dependency_rejected(self, emp_schema):
        with pytest.raises(ConstraintError):
            encode_dependencies(["not a dependency"], emp_schema)

    def test_ind_source_and_target_validated(self, emp_schema, master):
        with pytest.raises(ConstraintError):
            ind_to_master_as_cc(ind("Nope", "a", "Deptm", "dept"), emp_schema, master.schema)
        with pytest.raises(ConstraintError):
            ind_to_master_as_cc(ind("Emp", "dept", "Nope", "dept"), emp_schema, master.schema)


class TestFDImplication:
    def test_attribute_closure(self):
        fds = [fd("R", "A", "B"), fd("R", "B", "C")]
        assert attribute_closure(["A"], fds) == {"A", "B", "C"}
        assert attribute_closure(["B"], fds) == {"B", "C"}

    def test_fd_implies_transitivity(self):
        fds = [fd("R", "A", "B"), fd("R", "B", "C")]
        assert fd_implies(fds, fd("R", "A", "C"))
        assert not fd_implies(fds, fd("R", "C", "A"))

    def test_fd_implies_respects_relation(self):
        fds = [fd("R", "A", "B")]
        assert not fd_implies(fds, fd("S", "A", "B"))

    def test_is_key_and_minimal_keys(self):
        db = database_schema(schema("R", "A", "B", "C"))
        fds = [fd("R", "A", "B"), fd("R", "B", "C")]
        assert is_key(["A"], fds, db, "R")
        assert not is_key(["B"], fds, db, "R")
        assert minimal_keys(fds, db, "R") == [frozenset({"A"})]

    def test_counterexample_instance_violates_candidate(self):
        db = database_schema(schema("R", "A", "B", "C"))
        candidate = fd("R", "A", "B")
        witness = counterexample_instance(db, candidate)
        assert not candidate.is_satisfied(witness)
        # But it satisfies FDs with a larger LHS trivially.
        assert fd("R", ["A", "C"], ["B"]).is_satisfied(witness)


class TestChase:
    def test_chase_confirms_fd_only_implication(self):
        db = database_schema(schema("R", "A", "B", "C"))
        fds = [fd("R", "A", "B"), fd("R", "B", "C")]
        assert chase_fd_ind(db, fds, [], fd("R", "A", "C")) is True

    def test_chase_refutes_non_implication(self):
        db = database_schema(schema("R", "A", "B", "C"))
        fds = [fd("R", "A", "B")]
        assert chase_fd_ind(db, fds, [], fd("R", "A", "C")) is False

    def test_chase_with_ind_interaction(self):
        # R[A,B] ⊆ S[A,B] together with the FD A → B on S implies A → B on R
        # only through the IND + FD interaction when tuples are copied over.
        db = database_schema(schema("R", "A", "B"), schema("S", "A", "B"))
        fds = [fd("S", "A", "B")]
        inds = [ind("R", ["A", "B"], "S", ["A", "B"])]
        assert chase_fd_ind(db, fds, inds, fd("R", "A", "B")) is True

    def test_chase_budget_exhaustion_returns_none(self):
        # A cyclic IND that keeps generating fresh tuples never converges within
        # a tiny budget; the bounded chase reports "unknown".
        db = database_schema(schema("R", "A", "B"))
        inds = [ind("R", ["A"], "R", ["B"])]
        result = chase_fd_ind(db, [], inds, fd("R", "A", "B"), max_steps=2)
        assert result is None
