"""SAT engine internals: the CNF encoding, model decoding and enumeration.

Four-way world/verdict parity across the shared fixture corpus lives in
``test_engine_parity.py``, built on the differential harness of
:mod:`harness` (every check there runs ``engine="sat"`` too); this module
exercises what is specific to the SAT route — the encoding's
selector/presence structure, trivial-unsat detection, condition handling,
inequality-heavy instances and the engine's stats surface.  The handful of
parity-shaped checks below route through the same harness with the corpus
narrowed to the SAT engine.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from harness import assert_decider_parity, assert_engine_parity
from repro.completeness.consistency import is_consistent
from repro.constraints.containment import denial_cc, relation_containment_cc
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import default_active_domain, has_model, models
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import cq
from repro.queries.terms import Variable, var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.search.cnf_encoding import encode_world_search, iter_solver_models
from repro.search.sat_engine import SATWorldSearch
from repro.workloads.generator import inequality_chain_workload

x, y = var("x"), var("y")

PAIR_SCHEMA = database_schema(schema("R", "A", "B"))
BOOL_SCHEMA = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
EMPTY_MASTER = empty_master(database_schema(schema("M", "A")))


def naive_valuations(cinst, master, constraints, adom):
    from repro.ctables.possible_worlds import models_with_valuations

    return {
        frozenset(valuation.items())
        for valuation, _world in models_with_valuations(
            cinst, master, constraints, adom, engine="naive"
        )
    }


# ---------------------------------------------------------------------------
# encoding structure
# ---------------------------------------------------------------------------
class TestEncodingStructure:
    def test_selectors_cover_pools_exactly(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, "c"), (y, "d")])
        adom = default_active_domain(T, EMPTY_MASTER, [])
        encoding = encode_world_search(T, EMPTY_MASTER, [], adom)
        expected = sum(len(encoding.pools[v]) for v in encoding.variables)
        assert encoding.stats.selector_variables == expected
        assert len(encoding.selector_scope()) == expected

    def test_ground_instance_needs_no_variables(self):
        T = cinstance(PAIR_SCHEMA, R=[("c", "d")])
        encoding = encode_world_search(T, EMPTY_MASTER, [])
        assert encoding.stats.selector_variables == 0
        assert encoding.stats.baseline_tuples == 1
        assert not encoding.trivially_unsat

    def test_ground_violation_is_trivially_unsat(self):
        forbid_all = denial_cc(cq("q", [x, y], atoms=[atom("R", x, y)]))
        T = cinstance(PAIR_SCHEMA, R=[("c", "d"), (x, "e")])
        encoding = encode_world_search(T, EMPTY_MASTER, [forbid_all])
        assert encoding.trivially_unsat

    def test_decoded_models_are_exactly_the_naive_valuations(self):
        master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(1,)]},
        )
        constraint = relation_containment_cc("R", BOOL_SCHEMA, "Rm")
        T = cinstance(BOOL_SCHEMA, R=[(x,), (y,)])
        adom = default_active_domain(T, master, [constraint])
        encoding = encode_world_search(T, master, [constraint], adom)
        decoded = {
            frozenset(valuation.items()) for valuation in iter_solver_models(encoding)
        }
        assert decoded == naive_valuations(T, master, [constraint], adom)

    def test_condition_false_assignments_produce_no_tuple(self):
        # Row (x) if x ≠ 0 over the Boolean domain: only x=1 produces it.
        table = CTable(
            BOOL_SCHEMA["R"], [CTableRow((x,), condition(neq(x, 0)))]
        )
        T = CInstance(BOOL_SCHEMA, {"R": table})
        adom = default_active_domain(T, EMPTY_MASTER, [])
        encoding = encode_world_search(T, EMPTY_MASTER, [], adom)
        # Candidate universe: just the tuple (1,); x=0 grounds to nothing.
        assert encoding.stats.candidate_tuples == 1
        worlds = list(models(T, EMPTY_MASTER, [], adom, engine="sat"))
        sizes = sorted(world.size for world in worlds)
        assert sizes == [0, 1]

    def test_unsatisfiable_condition_row_never_appears(self):
        table = CTable(
            BOOL_SCHEMA["R"],
            [CTableRow((x,), condition(eq(x, 0), neq(x, 0)))],
        )
        T = CInstance(BOOL_SCHEMA, {"R": table})
        adom = default_active_domain(T, EMPTY_MASTER, [])
        encoding = encode_world_search(T, EMPTY_MASTER, [], adom)
        assert encoding.stats.candidate_tuples == 0
        assert all(
            world.size == 0 for world in models(T, EMPTY_MASTER, [], adom, engine="sat")
        )

    def test_finite_domain_restricts_selector_pool(self):
        # x ranges over the Boolean attribute domain only, never the full
        # active domain, so it contributes exactly two selectors.
        T = cinstance(BOOL_SCHEMA, R=[(x,)])
        adom = default_active_domain(T, EMPTY_MASTER, [])
        encoding = encode_world_search(T, EMPTY_MASTER, [], adom)
        assert list(encoding.pools[x]) == [0, 1]
        assert encoding.stats.selector_variables == 2
        assert has_model(T, EMPTY_MASTER, [], adom, engine="sat")


# ---------------------------------------------------------------------------
# engine surface
# ---------------------------------------------------------------------------
class TestSATWorldSearch:
    def test_has_world_is_a_single_sat_call(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, "c")])
        search = SATWorldSearch(T, EMPTY_MASTER, [])
        assert search.has_world()
        assert search.stats.solver is not None
        assert search.stats.solver.solve_calls == 1

    def test_search_counts_worlds_in_stats(self):
        T = cinstance(BOOL_SCHEMA, R=[(x,)])
        search = SATWorldSearch(T, EMPTY_MASTER, [])
        worlds = list(search.worlds())
        assert len(worlds) == 2  # x = 0 and x = 1
        assert search.stats.worlds == 2

    def test_count_worlds_deduplicates(self):
        # Two rows that can collapse onto the same tuple.
        T = cinstance(PAIR_SCHEMA, R=[(x, "c"), (y, "c")])
        naive = set(models(T, EMPTY_MASTER, [], engine="naive"))
        assert SATWorldSearch(T, EMPTY_MASTER, []).count_worlds() == len(naive)

    def test_empty_cinstance_has_single_empty_world(self):
        T = CInstance(PAIR_SCHEMA)
        worlds = list(SATWorldSearch(T, EMPTY_MASTER, []).worlds())
        assert len(worlds) == 1
        assert worlds[0].size == 0


# ---------------------------------------------------------------------------
# inequality-heavy instances (the regime the engine targets)
# ---------------------------------------------------------------------------
class TestInequalityHeavyInstances:
    def test_odd_cycle_is_inconsistent_even_cycle_is_not(self):
        for pair_count, expected in ((3, False), (4, True)):
            workload = inequality_chain_workload(pair_count, close_cycle=True)
            verdict = assert_decider_parity(
                lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                engines=("sat", "propagating"),
            )
            assert verdict == expected

    def test_open_chain_world_parity(self):
        workload = inequality_chain_workload(3, close_cycle=False)
        observations = assert_engine_parity(
            workload.cinstance,
            workload.master,
            workload.constraints,
            engines=("sat",),
        )
        # The chain alternates: exactly two world families survive.
        assert len(observations["sat"].worlds) == 2


# ---------------------------------------------------------------------------
# property-style parity on random conditioned c-tables
# ---------------------------------------------------------------------------
CONSTANTS = st.integers(min_value=0, max_value=2)
VARIABLE_NAMES = st.sampled_from(["x", "y", "z"])


def _terms():
    return st.one_of(CONSTANTS, VARIABLE_NAMES.map(Variable))


@st.composite
def _conditioned_ctables(draw):
    rows = draw(st.lists(st.tuples(_terms(), _terms()), min_size=0, max_size=3))
    built = []
    for terms in rows:
        variables = [t for t in terms if isinstance(t, Variable)]
        if variables and draw(st.booleans()):
            pivot = draw(st.sampled_from(variables))
            bound = draw(CONSTANTS)
            comparison = eq(pivot, bound) if draw(st.booleans()) else neq(pivot, bound)
            built.append(CTableRow(terms, condition(comparison)))
        else:
            built.append(CTableRow(terms))
    return CTable(PAIR_SCHEMA["R"], built)


@given(_conditioned_ctables())
@settings(max_examples=40, deadline=None)
def test_random_conditioned_ctable_sat_parity(table):
    T = CInstance(PAIR_SCHEMA, {"R": table})
    assert_engine_parity(T, EMPTY_MASTER, [], engines=("sat",))


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), max_size=2))
@settings(max_examples=30, deadline=None)
def test_random_constrained_sat_parity(rows):
    bool_pair = database_schema(
        RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
    )
    master = MasterData(
        database_schema(
            RelationSchema("Rm", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
        ),
        {"Rm": [(0, 0), (1, 1)]},
    )
    constraint = relation_containment_cc("R", bool_pair, "Rm")
    table = CTable(
        bool_pair["R"],
        [CTableRow(row) for row in rows] + [CTableRow((Variable("x"), Variable("y")))],
    )
    T = CInstance(bool_pair, {"R": table})
    assert_engine_parity(T, master, [constraint], engines=("sat",))
