"""The sharded process-parallel engine: planning, fallback, cancellation.

Four-way parity across the shared fixture corpus lives in
``test_engine_parity.py`` (every check there runs ``engine="parallel"``
too, through the public API whose small instances take the serial
fallback).  This module forces the actual process-pool path
(``min_parallel_valuations=0``) and exercises what is specific to it:

* shard planning (first-variable sharding, the two-variable fallback for
  small first pools, serial fallback conditions),
* order-identity of the merged enumeration with the serial engine,
* independence of the results from the ``workers`` count and from the
  shard submission order (hypothesis-driven, random constrained
  c-instances),
* the ``has_world`` cancellation fairness regression: a satisfiable
  instance whose *first* shard is expensive must return promptly because
  another shard finds a model and the cancellation event actually fires,
* the ``stop_check`` hook of the serial engine the cancellation rides on.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from harness import assert_engine_parity, assert_workers_independent
from repro.constraints.containment import cc, denial_cc, projection
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import default_active_domain, has_model, models
from repro.exceptions import SearchCancelledError, SearchError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import Variable, var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.search.engine import STOP_CHECK_STRIDE, WorldSearch
from repro.search.parallel import (
    ParallelWorldSearch,
    resolve_workers,
    shutdown_pools,
)
from repro.workloads.generator import registry_workload, wide_pool_workload

x, y = var("x"), var("y")

PAIR_SCHEMA = database_schema(schema("R", "A", "B"))
EMPTY_MASTER = empty_master(database_schema(schema("M", "A")))


def forced(cinst, master, constraints, adom=None, **kwargs):
    """A ParallelWorldSearch with the serial fallback disabled."""
    kwargs.setdefault("workers", 2)
    return ParallelWorldSearch(
        cinst, master, constraints, adom, min_parallel_valuations=0, **kwargs
    )


# ---------------------------------------------------------------------------
# shard planning and serial fallback
# ---------------------------------------------------------------------------
class TestShardPlanning:
    def test_wide_first_pool_shards_on_one_variable(self):
        workload = wide_pool_workload(rows=3, values_per_key=2)
        search = forced(workload.cinstance, workload.master, workload.constraints)
        list(search.search())
        assert not search.stats.serial_fallback
        assert len(search.stats.shard_variables) == 1
        # One shard per pool value of the first ordered variable.
        first = search.stats.shard_variables[0]
        assert search.stats.shards == len(search.pools[first])

    def test_small_first_pool_falls_back_to_variable_pair(self):
        # Boolean pools have two values; with two workers that is below the
        # shards-per-worker floor, so the first *two* variables shard jointly.
        bool_schema = database_schema(
            RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
        )
        T = cinstance(bool_schema, R=[(x, y)])
        search = forced(T, EMPTY_MASTER, [])
        list(search.search())
        assert not search.stats.serial_fallback
        assert len(search.stats.shard_variables) == 2
        assert search.stats.shards == 4  # 2 x 2 Boolean prefixes

    def test_single_variable_instance_cannot_pair(self):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        T = cinstance(bool_schema, R=[(x,)])
        search = forced(T, EMPTY_MASTER, [])
        list(search.search())
        assert len(search.stats.shard_variables) == 1
        assert search.stats.shards == 2

    def test_workers_one_takes_serial_fallback(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        search = forced(
            workload.cinstance, workload.master, workload.constraints, workers=1
        )
        list(search.search())
        assert search.stats.serial_fallback

    def test_small_search_takes_serial_fallback_by_default(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        search = ParallelWorldSearch(
            workload.cinstance, workload.master, workload.constraints, workers=2
        )
        list(search.search())
        assert search.stats.serial_fallback

    def test_ground_instance_has_no_shards(self):
        T = cinstance(PAIR_SCHEMA, R=[("c", "d")])
        search = forced(T, EMPTY_MASTER, [])
        worlds = list(search.worlds())
        assert search.stats.serial_fallback  # no variables, nothing to shard
        assert len(worlds) == 1

    def test_resolve_workers_validation(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(SearchError):
            resolve_workers(0)

    def test_unknown_shard_order_rejected(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        with pytest.raises(SearchError):
            ParallelWorldSearch(
                workload.cinstance,
                workload.master,
                workload.constraints,
                shard_order="random",
            )


# ---------------------------------------------------------------------------
# forced-parallel parity and order identity
# ---------------------------------------------------------------------------
class TestForcedParallelParity:
    @pytest.mark.parametrize(
        "master_size,db_rows,variable_count",
        [(3, 3, 2), (4, 3, 3)],
    )
    def test_registry_workloads(self, master_size, db_rows, variable_count):
        workload = registry_workload(
            master_size=master_size, db_rows=db_rows, variable_count=variable_count
        )
        assert_workers_independent(
            workload.cinstance, workload.master, workload.constraints
        )

    def test_wide_pool_enumeration_is_order_identical(self):
        workload = wide_pool_workload(rows=3, values_per_key=3)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        serial = list(
            models(
                workload.cinstance, workload.master, workload.constraints,
                adom, engine="propagating",
            )
        )
        search = forced(
            workload.cinstance, workload.master, workload.constraints, adom
        )
        assert list(search.worlds()) == serial

    def test_duplicate_worlds_deduplicated_across_shards(self):
        # Distinct shard-variable values can induce the same world; the merge
        # must deduplicate across shard boundaries like serial does in-stream.
        T = cinstance(PAIR_SCHEMA, R=[(x, "c"), (y, "c")])
        adom = default_active_domain(T, EMPTY_MASTER, [])
        serial = list(models(T, EMPTY_MASTER, [], adom, engine="propagating"))
        search = forced(T, EMPTY_MASTER, [], adom)
        merged = list(search.worlds())
        assert merged == serial
        assert search.stats.duplicate_worlds > 0

    def test_has_world_parity_on_inconsistent_instance(self):
        workload = wide_pool_workload(rows=3, values_per_key=2)
        search = forced(workload.cinstance, workload.master, workload.constraints)
        assert search.has_world() is False
        assert search.stats.found_shard is None

    def test_count_worlds_matches_naive(self):
        workload = wide_pool_workload(rows=3, values_per_key=3)
        naive = sum(
            1
            for _ in models(
                workload.cinstance, workload.master, workload.constraints,
                engine="naive",
            )
        )
        search = forced(workload.cinstance, workload.master, workload.constraints)
        assert search.count_worlds() == naive


# ---------------------------------------------------------------------------
# hypothesis: parallel-vs-serial parity, workers and shard-order independence
# ---------------------------------------------------------------------------
CONSTANTS = st.integers(min_value=0, max_value=2)
VARIABLE_NAMES = st.sampled_from(["x", "y", "z"])


def _terms():
    return st.one_of(CONSTANTS, VARIABLE_NAMES.map(Variable))


@st.composite
def _cinstances(draw):
    rows = draw(st.lists(st.tuples(_terms(), _terms()), min_size=1, max_size=3))
    table = CTable(PAIR_SCHEMA["R"], [CTableRow(terms) for terms in rows])
    return CInstance(PAIR_SCHEMA, {"R": table})


@st.composite
def _constraint_sets(draw):
    """Zero, one or two containment constraints over R against fixed masters."""
    master = MasterData(
        database_schema(schema("Rm", "A", "B")),
        {"Rm": [(0, 0), (1, 1), (2, 1)]},
    )
    constraints = []
    if draw(st.booleans()):
        constraints.append(
            cc(
                cq("bound", [x, y], atoms=[atom("R", x, y)]),
                projection("Rm", "A", "B"),
                name="r⊆rm",
            )
        )
    if draw(st.booleans()):
        constraints.append(
            denial_cc(
                boolean_cq(
                    "no_equal_pair",
                    atoms=[atom("R", x, y)],
                    comparisons=[eq(x, y)],
                ),
                name="x≠y",
            )
        )
    return master, constraints


@given(_cinstances(), _constraint_sets())
@settings(max_examples=15, deadline=None)
def test_random_cinstance_parallel_parity(T, master_and_constraints):
    master, constraints = master_and_constraints
    adom = default_active_domain(T, master, constraints)
    # Public-API four-way parity (parallel may take its serial fallback) ...
    assert_engine_parity(T, master, constraints, adom=adom, engines=("parallel",))
    # ... and the forced process-pool path across worker counts and shard
    # submission orders (1 = serial fallback, 2, None = one per CPU).
    assert_workers_independent(
        T, master, constraints, adom, workers_settings=(1, 2, None)
    )


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), max_size=2))
@settings(max_examples=10, deadline=None)
def test_random_boolean_rows_force_pair_sharding(rows):
    bool_schema = database_schema(
        RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
    )
    table = CTable(
        bool_schema["R"],
        [CTableRow(row) for row in rows]
        + [CTableRow((Variable("x"), Variable("y")))],
    )
    T = CInstance(bool_schema, {"R": table})
    assert_workers_independent(T, EMPTY_MASTER, [])


# ---------------------------------------------------------------------------
# has_world cancellation fairness (the regression the ISSUE calls out)
# ---------------------------------------------------------------------------
def _moded_pigeonhole(rows: int, values_per_key: int):
    """A satisfiable instance whose *first* shard is an expensive dead end.

    ``Mode(a)`` holds a single variable that the engine orders first; its
    candidate pool starts (by ``repr`` order) with the constant ``"0slow"``.
    An all-distinct denial CC over ``Record`` is *gated* on
    ``Mode = "0slow"``: under that prefix the instance is a pigeonhole
    contradiction (``rows`` keys, ``values_per_key`` registry values, all
    distinct) whose refutation walks a large subtree, while every other
    prefix admits an immediate model.  A fair ``has_model`` must therefore
    answer ``True`` promptly — shard 0 being busy is no excuse.
    """
    db_schema = database_schema(
        schema("Mode", "tag"), schema("Record", "key", "value")
    )
    master_schema = database_schema(schema("Registry", "key", "value"))
    master = MasterData(
        master_schema,
        {
            "Registry": [
                (f"k{i}", f"v{j}")
                for i in range(rows)
                for j in range(values_per_key)
            ]
        },
    )
    t, k, v, k2, v2 = var("t"), var("k"), var("v"), var("k2"), var("v2")
    constraints = [
        cc(
            cq("all_records", [k, v], atoms=[atom("Record", k, v)]),
            projection("Registry", "key", "value"),
            name="record⊆registry",
        ),
        denial_cc(
            boolean_cq(
                "slow_all_distinct",
                atoms=[
                    atom("Mode", t),
                    atom("Record", k, v),
                    atom("Record", k2, v2),
                ],
                comparisons=[eq(t, "0slow"), neq(k, k2), eq(v, v2)],
            ),
            name="all-distinct-when-slow",
        ),
    ]
    tables = {
        "Mode": CTable(db_schema["Mode"], [CTableRow((Variable("a"),))]),
        "Record": CTable(
            db_schema["Record"],
            [CTableRow((f"k{i}", Variable(f"w{i}"))) for i in range(rows)],
        ),
    }
    return CInstance(db_schema, tables), master, constraints


class TestHasModelCancellation:
    def test_first_shard_is_the_slow_prefix(self):
        T, master, constraints = _moded_pigeonhole(rows=3, values_per_key=2)
        search = forced(T, master, constraints)
        prefixes = search._prefixes()
        (first_variable,) = search.stats.shard_variables or search._shard_variables()
        assert first_variable.name == "a"
        assert list(prefixes[0].values()) == ["0slow"]

    def test_cancellation_fires_and_returns_promptly(self):
        # Serially, the engine would refute the whole "0slow" pigeonhole
        # subtree (seconds of work) before trying any other Mode value.  With
        # two workers, another shard reports a model almost immediately and
        # the cancellation event must cut the expensive shard short.
        T, master, constraints = _moded_pigeonhole(rows=7, values_per_key=6)
        search = forced(T, master, constraints, workers=2)
        start = time.perf_counter()
        found = search.has_world()
        elapsed = time.perf_counter() - start
        assert found is True
        assert not search.stats.serial_fallback
        assert search.stats.found_shard is not None and search.stats.found_shard > 0
        # The proof that cancellation actually fired: at least one shard was
        # abandoned (mid-search or before starting) instead of running dry.
        assert search.stats.cancelled_shards >= 1
        # "Promptly": well under the multi-second serial refutation of the
        # expensive first shard (generous margin for slow CI hosts).
        assert elapsed < 2.0, f"has_world took {elapsed:.2f}s; cancellation broken?"

    def test_verdict_matches_other_engines(self):
        T, master, constraints = _moded_pigeonhole(rows=3, values_per_key=2)
        assert has_model(T, master, constraints, engine="naive")
        assert forced(T, master, constraints).has_world()


# ---------------------------------------------------------------------------
# the stop_check hook the cancellation rides on
# ---------------------------------------------------------------------------
class TestStopCheck:
    def test_stop_check_aborts_search(self):
        # Big enough that the search visits more than one poll stride.
        workload = wide_pool_workload(rows=4, values_per_key=3)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        search = WorldSearch(
            workload.cinstance,
            workload.master,
            workload.constraints,
            adom,
            stop_check=lambda: True,
        )
        with pytest.raises(SearchCancelledError):
            list(search.search())
        # The poll happens every STOP_CHECK_STRIDE nodes, not per node.
        assert search.stats.nodes == STOP_CHECK_STRIDE

    def test_stop_check_false_is_harmless(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        plain = list(
            WorldSearch(
                workload.cinstance, workload.master, workload.constraints, adom
            ).search()
        )
        polled = list(
            WorldSearch(
                workload.cinstance,
                workload.master,
                workload.constraints,
                adom,
                stop_check=lambda: False,
            ).search()
        )
        assert plain == polled

    def test_parallel_enumeration_cancelled_mid_stream(self):
        # The streaming service rides on this: a consumer-side stop_check
        # flipping true mid-enumeration must abort the *parallel* driver
        # (not just the serial engine) with SearchCancelledError, well
        # before the full world count is merged.
        workload = wide_pool_workload(rows=3, values_per_key=4)  # 24 worlds
        cancelled = {"flag": False}
        search = forced(
            workload.cinstance,
            workload.master,
            workload.constraints,
            stop_check=lambda: cancelled["flag"],
        )
        seen = 0
        with pytest.raises(SearchCancelledError):
            for _valuation, _world in search.search():
                seen += 1
                if seen == 3:
                    cancelled["flag"] = True
        assert seen == 3
        assert not search.stats.serial_fallback
        assert search.stats.worlds < 24

    def test_parallel_existence_check_honours_stop_check(self):
        workload = wide_pool_workload(rows=3, values_per_key=4)
        search = forced(
            workload.cinstance,
            workload.master,
            workload.constraints,
            stop_check=lambda: True,
        )
        with pytest.raises(SearchCancelledError):
            search.has_world()


# ---------------------------------------------------------------------------
# engine-extension guards (forced order / pool overrides)
# ---------------------------------------------------------------------------
class TestWorldSearchExtensions:
    def test_forced_order_must_cover_all_variables(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, y)])
        with pytest.raises(SearchError):
            WorldSearch(T, EMPTY_MASTER, [], order=[x])

    def test_pool_override_for_unknown_variable_rejected(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, "c")])
        with pytest.raises(SearchError):
            WorldSearch(T, EMPTY_MASTER, [], pool_overrides={y: ["c"]})

    def test_pool_override_is_intersected_with_adom_pool(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, "c")])
        adom = default_active_domain(T, EMPTY_MASTER, [])
        search = WorldSearch(
            T, EMPTY_MASTER, [], adom,
            pool_overrides={x: ["not-in-adom", "c"]},
        )
        assert search.pools[x] == ["c"]
        assert [v[x] for v, _w in search.search()] == ["c"]


@pytest.fixture(scope="session", autouse=True)
def _shutdown_worker_pools():
    yield
    shutdown_pools()
