"""Differential + unit suite for the hash-indexed fact store and join planner.

The indexed delta checker (``ConstraintChecker(..., indexed=True)``) must be
observationally identical to the PR 5 linear-scan delta baseline
(``indexed=False``) and to the recompute-from-scratch ``mode="full"`` oracle
on **every** push/pop sequence — the hash-join planner of
:mod:`repro.search.joinplan` only changes how the remaining-atom join is
evaluated, never what it answers.  The hypothesis properties below drive all
three configurations in lockstep over random operation sequences (including
pops across violations); the engine-level tests lock identical world streams
and node/prune counters plus the ``uses_indexes`` stats flag; the parallel
test covers fork-inherited workers, whose indexes are session-local and
rebuilt lazily per worker.  Unit tests pin the index machinery itself:
multiset bucket discards, lazy build vs incremental maintenance, value
interning and the per-instance index cache.

Every test carries the ``delta_differential`` marker so ``scripts/check.sh``
runs this suite as part of the dedicated semantics gate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.containment import cc, denial_cc, projection
from repro.ctables.cinstance import cinstance
from repro.ctables.possible_worlds import default_active_domain
from repro.exceptions import SearchError
from repro.queries.atoms import atom, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.indexing import FactIndex, IndexedFactStore, instance_index
from repro.relational.instance import instance
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema
from repro.search.engine import WorldSearch
from repro.search.parallel import ParallelWorldSearch
from repro.search.propagation import ConstraintChecker
from repro.workloads.generator import (
    registry_workload,
    skewed_join_workload,
    wide_constraint_workload,
    wide_pool_workload,
)

pytestmark = pytest.mark.delta_differential

x, y, z, w = var("x"), var("y"), var("z"), var("w")

DB_SCHEMA = database_schema(schema("R", "A", "B"), schema("S", "A"))
MASTER = MasterData(
    database_schema(schema("Rm", "A", "B"), schema("Sm", "A")),
    {"Rm": [(0, 0), (1, 1), (1, 2), (2, 0)], "Sm": [(0,), (2,)]},
)

#: Structurally diverse constraints: the multi-atom joins are the hash-join
#: planner's target (seeded chains with projected-away variables), the FD
#: denial exercises comparisons at the leaves, the cross-relation join
#: exercises per-relation index maintenance.
CONSTRAINT_POOL = [
    cc(
        cq("bound", [x, y], atoms=[atom("R", x, y)]),
        projection("Rm", "A", "B"),
        name="r⊆rm",
    ),
    denial_cc(
        boolean_cq(
            "no_path3",
            atoms=[atom("R", x, y), atom("R", y, z), atom("R", z, w)],
        ),
        name="no-3-path",
    ),
    denial_cc(
        boolean_cq(
            "fd",
            atoms=[atom("R", x, y), atom("R", x, z)],
            comparisons=[neq(y, z)],
        ),
        name="fd:A→B",
    ),
    cc(
        cq("join", [y], atoms=[atom("R", x, y), atom("S", y)]),
        projection("Sm", "A"),
        name="r⋈s⊆sm",
    ),
]

#: The checker configurations under test: ``(mode, indexed)``.
CONFIGS = {
    "delta-indexed": ("delta", True),
    "delta-linear": ("delta", False),
    "full": ("full", False),
}

r_rows = st.tuples(st.integers(0, 2), st.integers(0, 2))
s_rows = st.tuples(st.integers(0, 2))
push_ops = st.one_of(
    st.tuples(st.just("push"), st.just("R"), r_rows),
    st.tuples(st.just("push"), st.just("S"), s_rows),
    st.tuples(st.just("pop"), st.just(""), st.just(())),
)
constraint_sets = st.lists(
    st.sampled_from(range(len(CONSTRAINT_POOL))), unique=True, max_size=3
).map(lambda indices: [CONSTRAINT_POOL[i] for i in indices])


# ---------------------------------------------------------------------------
# index machinery units
# ---------------------------------------------------------------------------
class TestFactIndex:
    def test_multiset_discard_keeps_shared_continuations(self):
        # Two rows project onto the same out-tuple; discarding one must keep
        # the continuation alive, discarding both must drop it.
        index = FactIndex((0,), (2,))
        index.add(("a", "t1", "b"))
        index.add(("a", "t2", "b"))
        assert index.group(("a",)) == {("b",): 2}
        assert index.entries == 1
        index.discard(("a", "t1", "b"))
        assert index.group(("a",)) == {("b",): 1}
        index.discard(("a", "t2", "b"))
        assert index.group(("a",)) == {}
        assert index.entries == 0
        assert not index.buckets  # empty buckets are garbage-collected

    def test_group_of_unknown_key_is_empty(self):
        index = FactIndex((0,), (1,), rows=[("a", "b")])
        assert index.group(("zzz",)) == {}

    def test_estimate_is_mean_distinct_out_tuples_per_bucket(self):
        index = FactIndex((0,), (1,))
        for row in [("a", 1), ("a", 2), ("a", 3), ("b", 1)]:
            index.add(row)
        assert index.estimate() == pytest.approx(2.0)  # 4 entries / 2 buckets
        assert FactIndex((0,), (1,)).estimate() == 0.0

    def test_incremental_maintenance_matches_rebuild(self):
        rows = [("a", i % 3, f"t{i}") for i in range(9)] + [("b", 0, "u")]
        incremental = FactIndex((0, 1), (2,))
        for row in rows:
            incremental.add(row)
        for row in rows[::2]:
            incremental.discard(row)
        rebuilt = FactIndex((0, 1), (2,), rows=[r for r in rows if r not in rows[::2]])
        assert incremental.buckets == rebuilt.buckets
        assert incremental.entries == rebuilt.entries


class TestIndexedFactStore:
    def test_is_a_plain_mapping_of_row_sets(self):
        store = IndexedFactStore(["R", "S"])
        store.add_row("R", (1, 2))
        assert store == {"R": {(1, 2)}, "S": set()}

    def test_duplicate_add_reports_not_added(self):
        store = IndexedFactStore(["R"])
        _, added = store.add_row("R", (1, 2))
        assert added
        _, added = store.add_row("R", (1, 2))
        assert not added

    def test_interning_canonicalises_equal_values(self):
        store = IndexedFactStore(["R"])
        first = "key" + str(0)
        second = "key" + str(0)
        assert first is not second  # distinct but equal objects
        row1, _ = store.add_row("R", (first, 1))
        store.discard_row("R", (first, 1))
        row2, _ = store.add_row("R", (second, 1))
        assert row1[0] is row2[0]  # one representative object survives

    def test_interning_can_be_disabled(self):
        store = IndexedFactStore(["R"], intern_values=False)
        value = "key" + str(0)
        row, _ = store.add_row("R", (value, 1))
        assert row[0] is value

    def test_indexes_are_lazy_and_stay_in_sync(self):
        store = IndexedFactStore(["R"])
        store.add_row("R", ("a", 1))
        assert store.built_indexes == 0  # nothing asked for an index yet
        index = store.index("R", ((0,), (1,)))
        assert store.built_indexes == 1
        assert index.group(("a",)) == {(1,): 1}
        # Mutations after the build maintain the index incrementally...
        store.add_row("R", ("a", 2))
        store.discard_row("R", ("a", 1))
        assert index.group(("a",)) == {(2,): 1}
        # ...and the same signature returns the same index object.
        assert store.index("R", ((0,), (1,))) is index

    def test_index_on_unknown_relation_is_empty(self):
        store = IndexedFactStore(["R"])
        assert store.index("T", ((0,), ())).group(()) == {}

    def test_discard_of_absent_row_is_a_noop(self):
        store = IndexedFactStore(["R"])
        index = store.index("R", ((0,), (1,)))
        store.discard_row("R", ("ghost", 1))
        store.discard_row("T", ("ghost", 1))
        assert index.entries == 0


class TestInstanceIndex:
    def test_built_once_and_cached_per_signature(self):
        inst = instance(DB_SCHEMA, R=[(1, 1), (1, 2)], S=[(0,)])
        signature = ((0,), (1,))
        index = instance_index(inst, "R", signature)
        assert index.group((1,)) == {(1,): 1, (2,): 1}
        assert instance_index(inst, "R", signature) is index
        other = instance_index(inst, "R", ((1,), (0,)))
        assert other is not index

    def test_cache_does_not_affect_instance_equality(self):
        left = instance(DB_SCHEMA, R=[(1, 1)])
        right = instance(DB_SCHEMA, R=[(1, 1)])
        instance_index(left, "R", ((0,), (1,)))
        assert left == right
        assert hash(left) == hash(right)


# ---------------------------------------------------------------------------
# three-way session lockstep
# ---------------------------------------------------------------------------
def lockstep(constraints, operations):
    """Drive all three checker configurations in lockstep, asserting agreement."""
    sessions = {
        label: ConstraintChecker(
            MASTER, constraints, mode=mode, indexed=indexed
        ).session(DB_SCHEMA.relation_names)
        for label, (mode, indexed) in CONFIGS.items()
    }
    reference = sessions["delta-indexed"]
    for op, relation, row in operations:
        if op == "push":
            verdicts = {
                label: session.push(relation, row)
                for label, session in sessions.items()
            }
            assert len(set(verdicts.values())) == 1, (relation, row, verdicts)
        else:
            if not reference.depth:
                continue
            for session in sessions.values():
                session.pop()
        for label, session in sessions.items():
            assert session.facts == reference.facts, label
            assert session.is_satisfied == reference.is_satisfied, label
            assert (
                session.violated_constraints() == reference.violated_constraints()
            ), label
    return sessions


class TestThreeWayLockstep:
    @settings(max_examples=80, deadline=None)
    @given(constraints=constraint_sets, operations=st.lists(push_ops, max_size=20))
    def test_configurations_agree_on_every_push_pop_sequence(
        self, constraints, operations
    ):
        lockstep(constraints, operations)

    @settings(max_examples=40, deadline=None)
    @given(constraints=constraint_sets, operations=st.lists(push_ops, max_size=14))
    def test_full_unwind_restores_the_empty_store(self, constraints, operations):
        sessions = lockstep(constraints, operations)
        for label, session in sessions.items():
            session.pop_to(0)
            assert all(not rows for rows in session.facts.values()), label
            assert session.is_satisfied == session.check_full(), label

    def test_pop_after_violation_unwinds_index_entries(self):
        # The violating push adds index entries; popping it must remove
        # exactly those, leaving lookups as if the push never happened.
        checker = ConstraintChecker(MASTER, [CONSTRAINT_POOL[0]], indexed=True)
        session = checker.session(DB_SCHEMA.relation_names)
        assert session.push("R", (1, 1)) is True
        index = session.facts.index("R", ((0,), (1,)))
        assert session.push("R", (2, 2)) is False  # (2,2) ∉ Rm
        assert index.group((2,)) == {(2,): 1}
        session.pop()
        assert session.is_satisfied
        assert index.group((2,)) == {}
        assert session.facts["R"] == {(1, 1)}

    def test_uses_indexes_reflects_mode_and_flag(self):
        assert ConstraintChecker(MASTER, [], indexed=True).uses_indexes
        assert not ConstraintChecker(MASTER, [], indexed=False).uses_indexes
        assert not ConstraintChecker(MASTER, [], mode="full", indexed=True).uses_indexes


# ---------------------------------------------------------------------------
# engine-level differential (identical trees, counters and stats flags)
# ---------------------------------------------------------------------------
def _workload_corpus():
    return [
        wide_constraint_workload(ground_rows=6, variable_rows=2, width=3),
        skewed_join_workload(hub_degree=6, variable_rows=2),
        registry_workload(master_size=3, db_rows=3, variable_count=2),
    ]


class TestEngineLevelDifferential:
    @pytest.mark.parametrize("workload_index", range(3))
    def test_same_worlds_and_counters_across_configurations(self, workload_index):
        workload = _workload_corpus()[workload_index]
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        observed = {}
        for label, (mode, indexed) in CONFIGS.items():
            checker = ConstraintChecker(
                workload.master, workload.constraints, mode=mode, indexed=indexed
            )
            search = WorldSearch(
                workload.cinstance, workload.master, workload.constraints, adom,
                checker=checker,
            )
            pairs = [
                (frozenset(valuation.items()), world)
                for valuation, world in search.search()
            ]
            observed[label] = (pairs, search.stats.nodes, search.stats.pruned)
            assert search.stats.uses_indexes == (label == "delta-indexed"), label
        assert observed["delta-indexed"] == observed["delta-linear"]
        assert observed["delta-indexed"] == observed["full"]

    @settings(max_examples=30, deadline=None)
    @given(
        constraints=constraint_sets,
        ground=st.lists(r_rows, max_size=2),
        seed_rows=st.integers(1, 2),
    )
    def test_random_instances_enumerate_identically(
        self, constraints, ground, seed_rows
    ):
        rows = [tuple(row) for row in ground]
        rows += [(var(f"h{i}"), var(f"t{i}")) for i in range(seed_rows)]
        T = cinstance(DB_SCHEMA, R=rows)
        adom = default_active_domain(T, MASTER, constraints)
        observed = {}
        for label, (mode, indexed) in CONFIGS.items():
            search = WorldSearch(
                T, MASTER, constraints, adom,
                checker=ConstraintChecker(
                    MASTER, constraints, mode=mode, indexed=indexed
                ),
            )
            pairs = [
                (frozenset(valuation.items()), world)
                for valuation, world in search.search()
            ]
            observed[label] = (pairs, search.stats.nodes, search.stats.pruned)
        assert observed["delta-indexed"] == observed["delta-linear"]
        assert observed["delta-indexed"] == observed["full"]


class TestParallelForkParity:
    """Fork-inherited workers rebuild their session-local indexes lazily."""

    @pytest.mark.parametrize("indexed", [True, False])
    def test_forced_parallel_matches_serial_worlds(self, indexed):
        workload = wide_pool_workload(rows=3, values_per_key=3)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        serial = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom,
            checker=ConstraintChecker(
                workload.master, workload.constraints, indexed=indexed
            ),
        )
        expected = [
            (frozenset(valuation.items()), world)
            for valuation, world in serial.search()
        ]
        parallel = ParallelWorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom,
            checker=ConstraintChecker(
                workload.master, workload.constraints, indexed=indexed
            ),
            workers=2,
            min_parallel_valuations=0,
        )
        got = [
            (frozenset(valuation.items()), world)
            for valuation, world in parallel.search()
        ]
        assert got == expected
        assert parallel.stats.uses_indexes == indexed


# ---------------------------------------------------------------------------
# ordering knobs: same worlds, different visit order
# ---------------------------------------------------------------------------
class TestOrderingKnobs:
    @staticmethod
    def _world_set(search):
        return {
            (frozenset(valuation.items()), world)
            for valuation, world in search.search()
        }

    def test_adaptive_reranking_preserves_the_world_set(self):
        # The pigeonhole regime prunes heavily, so the adaptive counters see
        # real prune-rate signal; reranking may reorder the visit but must
        # enumerate exactly the same worlds.
        workload = wide_pool_workload(rows=4, values_per_key=4)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        baseline = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom
        )
        adaptive = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom,
            adaptive=True,
        )
        assert self._world_set(adaptive) == self._world_set(baseline)

    def test_adaptive_runs_are_deterministic(self):
        workload = wide_pool_workload(rows=4, values_per_key=3)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        runs = [
            list(
                WorldSearch(
                    workload.cinstance, workload.master, workload.constraints,
                    adom, adaptive=True,
                ).search()
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_fresh_first_pool_order_preserves_the_world_set(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        baseline = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom
        )
        ordered = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom,
            pool_order="fresh_first",
        )
        assert self._world_set(ordered) == self._world_set(baseline)

    def test_unknown_pool_order_is_rejected(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        with pytest.raises(SearchError):
            WorldSearch(
                workload.cinstance, workload.master, workload.constraints, adom,
                pool_order="alphabetical",
            )
