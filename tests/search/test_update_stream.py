"""Update-stream parity: incremental ``Database.update`` vs rebuild oracle.

The differential harness gains an *update-stream* mode in this PR
(:func:`harness.assert_update_stream_parity`): a single incremental facade
applies a scripted sequence of ground adds/drops via
:meth:`repro.api.Database.update` while, at every step, a fresh facade is
rebuilt from scratch over the same c-instance and both are observed through
all four engines.  Any divergence — a stale decision cache entry, a live
SAT solver whose assumption set drifted from the c-instance, a checker
session left holding a retracted tuple — shows up as a parity failure at
the exact step that introduced it.

Scripts come from :func:`repro.workloads.update_stream_workload`; the
``include_violations`` variant steers the stream through certainly
inconsistent states (off-registry rows), exercising the empty-``Mod``
branches of every engine mid-stream.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import assert_update_stream_parity, observe_database, parallel_observation
from repro.api import Database
from repro.workloads.generator import update_stream_workload

pytestmark = pytest.mark.delta_differential


@pytest.mark.parametrize("seed", range(4))
def test_consistent_stream_parity(seed):
    """Registry-pair streams keep Adom stable and every engine in agreement."""
    workload = update_stream_workload(
        steps=8, master_size=4, db_rows=2, variable_count=1, seed=seed
    )
    db = assert_update_stream_parity(
        workload.base.cinstance,
        workload.base.master,
        workload.base.constraints,
        workload.script,
    )
    # The whole stream stayed inside the registry constants: the live SAT
    # session must have survived every step.
    decision = db.is_consistent(witness=False)
    assert decision.stats.reused_solver is True


@pytest.mark.parametrize("seed", range(3))
def test_violating_stream_parity(seed):
    """Streams that pass through inconsistent states stay in parity too."""
    workload = update_stream_workload(
        steps=8,
        master_size=4,
        db_rows=2,
        variable_count=1,
        include_violations=True,
        seed=seed,
    )
    assert_update_stream_parity(
        workload.base.cinstance,
        workload.base.master,
        workload.base.constraints,
        workload.script,
    )


def test_no_fd_stream_parity():
    """Without the FD the instance has more worlds; parity must still hold."""
    workload = update_stream_workload(
        steps=6, master_size=3, db_rows=2, variable_count=1, with_fd=False, seed=5
    )
    assert_update_stream_parity(
        workload.base.cinstance,
        workload.base.master,
        workload.base.constraints,
        workload.script,
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(1, 6))
def test_random_stream_parity(seed, steps):
    """Hypothesis-driven scripts: any add/drop order, violations included."""
    workload = update_stream_workload(
        steps=steps,
        master_size=3,
        db_rows=2,
        variable_count=1,
        include_violations=True,
        seed=seed,
    )
    assert_update_stream_parity(
        workload.base.cinstance,
        workload.base.master,
        workload.base.constraints,
        workload.script,
        fork_check=False,
    )


def test_forked_workers_observe_post_update_state():
    """A forced process-pool run sees the updated rows, not the originals.

    ``parallel_observation`` disables the serial fallback, so the shards
    really fork; their merged result must match the incremental facade's
    own observation after the update (and differ from the pre-update one).
    """
    workload = update_stream_workload(
        steps=0, master_size=4, db_rows=2, variable_count=1, seed=7
    )
    base = workload.base
    db = Database(base.cinstance, base.master, base.constraints, engine="sat")
    before_pairs, _before_has = parallel_observation(
        db.cinstance, base.master, base.constraints, adom=db.adom()
    )
    registry_rows = sorted(base.master.relation("Registry").rows)
    present = {
        row.terms for row in db.cinstance.table("Record").rows if not row.variables()
    }
    new_row = next(row for row in registry_rows if row not in present)
    db.update(add_rows={"Record": [new_row]})
    after_pairs, after_has = parallel_observation(
        db.cinstance, base.master, base.constraints, adom=db.adom()
    )
    worlds, pairs, _count, has = observe_database(db, "parallel")
    assert frozenset(after_pairs) == pairs
    assert after_has == has
    assert frozenset(after_pairs) != frozenset(before_pairs)
    assert all(new_row in world.relation("Record").rows for world in worlds)
