"""Four-way engine parity for the engine-routed extension searches.

``completeness/extensions.py`` now rides the engine registry like every
other decider: single-tuple, tableau and bounded extension enumeration are
world searches over an instance augmented with candidate extension rows.
These tests run the :data:`~tests.search.harness.EXTENSION_FIXTURES` family
through all four engines via
:func:`~tests.search.harness.assert_extension_engine_parity` (which also
pins every engine against the independent brute-force oracles), exercise the
extensibility decider across engines, and check that a dynamically
registered fifth engine is reachable from the extension surface too.
"""

from __future__ import annotations

import pytest

from repro.completeness.consistency import (
    extensibility_active_domain,
    is_extensible,
)
from repro.completeness.extensions import single_tuple_extensions
from repro.search.engine import WorldSearch
from repro.search.registry import register_engine, unregister_engine

from tests.search.harness import (
    ALL_ENGINES,
    CHECKED_ENGINES,
    EXTENSION_FIXTURES,
    assert_decider_parity,
    assert_extension_engine_parity,
    oracle_single_tuple_extensions,
)


@pytest.mark.parametrize(
    "fixture", EXTENSION_FIXTURES, ids=[f.label for f in EXTENSION_FIXTURES]
)
def test_four_way_extension_parity(fixture):
    assert_extension_engine_parity(fixture)


@pytest.mark.parametrize(
    "fixture", EXTENSION_FIXTURES, ids=[f.label for f in EXTENSION_FIXTURES]
)
def test_extensibility_decider_parity(fixture):
    adom = extensibility_active_domain(
        fixture.base, fixture.master, list(fixture.constraints)
    )
    verdict = assert_decider_parity(
        lambda engine: is_extensible(
            fixture.base, fixture.master, list(fixture.constraints),
            adom, engine=engine,
        )
    )
    oracle = oracle_single_tuple_extensions(
        fixture.base, fixture.master, fixture.constraints, adom
    )
    assert verdict.holds == bool(oracle)


def test_extensibility_witness_is_a_valid_extension():
    fixture = EXTENSION_FIXTURES[1]  # bool-pair-seeded: extensions exist
    for engine in ALL_ENGINES:
        decision = is_extensible(
            fixture.base, fixture.master, list(fixture.constraints),
            witness=True, engine=engine,
        )
        assert decision.holds
        assert decision.witness.size == fixture.base.size + 1
        assert decision.engine_used == engine


def test_registered_engine_reaches_extension_search():
    """A drop-in engine is selectable from the extension surface untouched."""
    fixture = EXTENSION_FIXTURES[0]
    adom = extensibility_active_domain(
        fixture.base, fixture.master, list(fixture.constraints)
    )
    created = []

    def factory(cinstance, master, constraints, adom, *, workers, checker,
                break_symmetry, **options):
        search = WorldSearch(
            cinstance, master, constraints, adom,
            break_symmetry=break_symmetry, checker=checker, **options,
        )
        created.append(search)
        return search

    register_engine("ext-test-engine", factory)
    try:
        produced = set(
            single_tuple_extensions(
                fixture.base, fixture.master, fixture.constraints, adom,
                engine="ext-test-engine",
            )
        )
    finally:
        unregister_engine("ext-test-engine")
    assert created, "the registered engine was never instantiated"
    assert produced == oracle_single_tuple_extensions(
        fixture.base, fixture.master, fixture.constraints, adom
    )


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_extension_workers_independent(workers):
    fixture = EXTENSION_FIXTURES[3]
    observations = assert_extension_engine_parity(
        fixture, engines=CHECKED_ENGINES, workers=workers
    )
    assert observations["parallel"].single == observations["naive"].single
