"""Parity tests: every engine must agree with the naive reference path.

The pruned world-search engine, the SAT-backed engine and the sharded
process-parallel engine (:mod:`repro.search`) replace the naive cross-product
enumeration of ``Mod_Adom(T, D_m, V)``; these tests assert all engines
produce identical world sets, valuation sets and decision verdicts on every
fixture family the repository uses — workloads, the patients scenario, the
hardness-reduction instances, conditioned rows and hypothesis-generated
random c-tables.

The comparisons themselves live in the reusable differential harness
(:mod:`harness` in this directory): each fixture family is one
:func:`harness.assert_engine_parity` / :func:`harness.assert_decider_parity`
call, and a new engine joins the whole corpus by being added to
``harness.ALL_ENGINES``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from harness import (
    CHECKED_ENGINES,
    assert_decider_parity,
    assert_engine_parity,
)
from repro.completeness.consistency import is_consistent
from repro.completeness.minp import (
    is_minimal_strongly_complete,
    is_minimal_viably_complete,
    is_minimal_weakly_complete,
)
from repro.completeness.rcqp import rcqp_bounded_search
from repro.completeness.strong import is_strongly_complete
from repro.completeness.viable import is_viably_complete
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import denial_cc, relation_containment_cc
from repro.ctables.cinstance import CInstance, cinstance
from repro.ctables.conditions import condition
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import (
    default_active_domain,
    has_model,
    models,
)
from repro.exceptions import SearchError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import cq
from repro.queries.terms import Variable, var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.reductions.consistency_reduction import build_consistency_reduction
from repro.reductions.sat import random_forall_exists_instance
from repro.search import ConstraintChecker, WorldSearch, order_variables, world_key
from repro.workloads.generator import registry_workload, wide_pool_workload
from repro.workloads.patients import build_patient_scenario

x, y, z = var("x"), var("y"), var("z")


# ---------------------------------------------------------------------------
# world-set parity across the fixture families (four-way, via the harness)
# ---------------------------------------------------------------------------
class TestWorldParity:
    @pytest.mark.parametrize(
        "master_size,db_rows,variable_count,with_fd",
        [
            (2, 2, 0, True),
            (3, 2, 1, True),
            (3, 3, 2, True),
            (3, 3, 3, False),
            (4, 3, 2, True),
        ],
    )
    def test_registry_workloads(self, master_size, db_rows, variable_count, with_fd):
        workload = registry_workload(
            master_size=master_size,
            db_rows=db_rows,
            variable_count=variable_count,
            with_fd=with_fd,
        )
        assert_engine_parity(workload.cinstance, workload.master, workload.constraints)

    def test_patient_scenario(self):
        scenario = build_patient_scenario()
        assert_engine_parity(
            scenario.figure1, scenario.master, scenario.constraints, scenario.q1
        )

    def test_wide_pool_workload(self):
        workload = wide_pool_workload(rows=3, values_per_key=2)
        assert not workload.consistent
        observations = assert_engine_parity(
            workload.cinstance, workload.master, workload.constraints
        )
        assert observations["naive"].count == 0

    @pytest.mark.parametrize("dimensions", [(1, 1, 2), (2, 1, 3)])
    def test_consistency_reduction_instances(self, dimensions):
        formula = random_forall_exists_instance(*dimensions, seed=7)
        reduction = build_consistency_reduction(formula)
        assert_engine_parity(
            reduction.cinstance, reduction.master, reduction.constraints
        )

    def test_conditioned_rows(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        table = CTable(
            pair_schema["R"],
            [
                CTableRow((x, "c"), condition(neq(x, "c"))),
                CTableRow((y, z), condition(eq(y, "c"))),
                CTableRow(("c", "d")),
            ],
        )
        T = CInstance(pair_schema, {"R": table})
        assert_engine_parity(T, master, [])

    def test_inconsistent_cinstance(self):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        master = empty_master(database_schema(schema("M", "A")))
        forbid_all = denial_cc(cq("q", [x], atoms=[atom("R", x)]))
        T = cinstance(bool_schema, R=[(x,)])
        observations = assert_engine_parity(T, master, [forbid_all])
        assert not observations["naive"].has

    def test_empty_cinstance(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        assert_engine_parity(CInstance(pair_schema), master, [])

    def test_duplicate_inducing_rows(self):
        bool_schema = database_schema(
            RelationSchema("R", [("A", BOOLEAN_DOMAIN), "B"])
        )
        master = empty_master(database_schema(schema("M", "A")))
        T = cinstance(bool_schema, R=[(x, "c"), (y, "c")])
        assert_engine_parity(T, master, [])


# ---------------------------------------------------------------------------
# decision-procedure parity (RCDP / MINP / RCQP, every engine)
# ---------------------------------------------------------------------------
class TestDeciderParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_patient_scenario()

    def test_rcdp_verdicts(self, scenario):
        for query in (scenario.q1, scenario.q4):
            for decider in (is_strongly_complete, is_weakly_complete, is_viably_complete):
                assert_decider_parity(
                    lambda engine, d=decider, q=query: d(
                        scenario.figure1,
                        q,
                        scenario.master,
                        scenario.constraints,
                        engine=engine,
                    )
                )

    def test_minp_verdicts(self, scenario):
        trimmed = scenario.figure1.without_row("MVisit", 1)
        for target in (scenario.figure1, trimmed):
            for decider in (
                is_minimal_strongly_complete,
                is_minimal_viably_complete,
                is_minimal_weakly_complete,
            ):
                assert_decider_parity(
                    lambda engine, d=decider, t=target: d(
                        t, scenario.q1, scenario.master, scenario.constraints,
                        engine=engine,
                    )
                )

    def test_consistency_verdicts(self):
        for dimensions in [(1, 1, 2), (2, 1, 3), (2, 2, 4)]:
            formula = random_forall_exists_instance(*dimensions, seed=7)
            reduction = build_consistency_reduction(formula)
            verdict = assert_decider_parity(
                lambda engine, r=reduction: is_consistent(
                    r.cinstance, r.master, r.constraints, engine=engine
                )
            )
            assert verdict == (not reduction.formula_is_true())

    @pytest.mark.parametrize("max_size", [0, 1, 2])
    def test_rcqp_bounded_search_verdicts(self, max_size):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(0,), (1,)]},
        )
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        query = cq("Q", [x], atoms=[atom("R", x)], comparisons=[eq(x, 1)])
        naive = rcqp_bounded_search(
            query, bool_schema, master, [constraint], max_size=max_size, engine="naive"
        )
        for engine_name in CHECKED_ENGINES:
            engine = rcqp_bounded_search(
                query, bool_schema, master, [constraint], max_size=max_size,
                engine=engine_name,
            )
            assert naive.holds == engine.holds, engine_name
            if engine.holds:
                # Engine witnesses are drawn from the same candidate space and
                # must themselves be complete.
                from repro.completeness.ground import is_ground_complete

                assert is_ground_complete(engine.witness, query, master, [constraint])

    def test_rcqp_negative_for_unbounded_query(self):
        free_schema = database_schema(schema("S", "A"))
        master = empty_master(database_schema(schema("M", "A")))
        query = cq("Q", [x], atoms=[atom("S", x)])
        for engine in ("naive",) + CHECKED_ENGINES:
            result = rcqp_bounded_search(
                query, free_schema, master, [], max_size=2, engine=engine
            )
            assert not result.holds


# ---------------------------------------------------------------------------
# property-style parity on random c-tables
# ---------------------------------------------------------------------------
PAIR_SCHEMA = database_schema(RelationSchema("R", ["A", "B"]))
BOOL_PAIR_SCHEMA = database_schema(
    RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
)
CONSTANTS = st.integers(min_value=0, max_value=2)
VARIABLE_NAMES = st.sampled_from(["x", "y", "z"])


def _terms():
    return st.one_of(CONSTANTS, VARIABLE_NAMES.map(Variable))


@st.composite
def _ctables(draw):
    rows = draw(st.lists(st.tuples(_terms(), _terms()), min_size=0, max_size=3))
    built = []
    for terms in rows:
        variables = [t for t in terms if isinstance(t, Variable)]
        if variables and draw(st.booleans()):
            pivot = draw(st.sampled_from(variables))
            bound = draw(CONSTANTS)
            comparison = eq(pivot, bound) if draw(st.booleans()) else neq(pivot, bound)
            built.append(CTableRow(terms, condition(comparison)))
        else:
            built.append(CTableRow(terms))
    return CTable(PAIR_SCHEMA["R"], built)


@given(_ctables())
@settings(max_examples=40, deadline=None)
def test_random_ctable_world_parity(table):
    T = CInstance(PAIR_SCHEMA, {"R": table})
    master = empty_master(database_schema(schema("M", "A")))
    assert_engine_parity(T, master, [])


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), max_size=2))
@settings(max_examples=30, deadline=None)
def test_random_constrained_world_parity(rows):
    master = MasterData(
        database_schema(
            RelationSchema("Rm", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
        ),
        {"Rm": [(0, 0), (1, 1)]},
    )
    constraint = relation_containment_cc("R", BOOL_PAIR_SCHEMA, "Rm")
    table = CTable(
        BOOL_PAIR_SCHEMA["R"],
        [CTableRow(row) for row in rows] + [CTableRow((Variable("x"), Variable("y")))],
    )
    T = CInstance(BOOL_PAIR_SCHEMA, {"R": table})
    assert_engine_parity(T, master, [constraint])


# ---------------------------------------------------------------------------
# engine internals: pruning, symmetry, canonical dedup, ordering
# ---------------------------------------------------------------------------
class TestEngineInternals:
    def test_pruning_beats_cross_product(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=3)
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        search = WorldSearch(
            workload.cinstance, workload.master, workload.constraints, adom
        )
        worlds = list(search.worlds())
        assert worlds  # the workload is consistent
        assert search.stats.pruned > 0
        # The cross product would visit prod(|pool|) leaves; the pruned search
        # must visit strictly fewer nodes in total.
        from repro.ctables.valuation import count_valuations

        assert search.stats.nodes < count_valuations(workload.cinstance, adom)

    def test_symmetry_breaking_preserves_existence(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        T = cinstance(pair_schema, R=[(x, "c"), (y, "c"), (z, "d")])
        adom = default_active_domain(T, master, [])
        plain = WorldSearch(T, master, [], adom)
        reduced = WorldSearch(T, master, [], adom, break_symmetry=True)
        assert plain.has_world() and reduced.has_world()
        exhaustive = WorldSearch(T, master, [], adom)
        pruned = WorldSearch(T, master, [], adom, break_symmetry=True)
        total = sum(1 for _ in exhaustive.search())
        reduced_total = sum(1 for _ in pruned.search())
        assert reduced_total < total
        assert pruned.stats.symmetry_skips > 0

    def test_symmetry_skips_only_fresh_permutations(self):
        # Every satisfying valuation must be reachable from a symmetry-reduced
        # one by permuting fresh values, so the *world sizes* seen agree.
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        T = cinstance(pair_schema, R=[(x, "c"), (y, "d")])
        adom = default_active_domain(T, master, [])
        full_sizes = {w.size for _v, w in WorldSearch(T, master, [], adom).search()}
        reduced_sizes = {
            w.size
            for _v, w in WorldSearch(T, master, [], adom, break_symmetry=True).search()
        }
        assert full_sizes == reduced_sizes

    def test_world_key_is_canonical(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        T = cinstance(pair_schema, R=[(x, "c"), (y, "c")])
        worlds = list(models(T, master, []))
        assert len({world_key(w) for w in worlds}) == len(set(worlds))
        for world in worlds:
            assert world_key(world) == world_key(world)

    def test_unknown_engine_rejected(self):
        pair_schema = database_schema(schema("R", "A", "B"))
        master = empty_master(database_schema(schema("M", "A")))
        T = CInstance(pair_schema)
        with pytest.raises(SearchError):
            list(models(T, master, [], engine="bogus"))

    def test_order_variables_complete_and_deterministic(self):
        pools = {x: [0, 1, 2], y: [0], z: [0, 1]}
        rows = [{x, y}, {z}]
        first = order_variables(pools, [set(vs) for vs in rows])
        second = order_variables(pools, [set(vs) for vs in rows])
        assert first == second
        assert set(first) == {x, y, z}
        # z completes a row on its own and has a small pool: it must precede x.
        assert first.index(z) < first.index(x)

    def test_constraint_checker_touched_filtering(self):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(1,)]},
        )
        constraint = relation_containment_cc("R", bool_schema, "Rm")
        checker = ConstraintChecker(master, [constraint])
        assert checker.check({"R": {(1,)}})
        assert not checker.check({"R": {(0,)}})
        # An untouched relation set skips the (violated) constraint entirely.
        assert checker.check({"R": {(0,)}}, touched={"S"})
        assert checker.violated({"R": {(0,)}}) == [constraint]

    def test_ground_row_violation_prunes_at_root(self):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        master = empty_master(database_schema(schema("M", "A")))
        forbid_all = denial_cc(cq("q", [x], atoms=[atom("R", x)]))
        T = cinstance(bool_schema, R=[(1,), (x,)])
        adom = default_active_domain(T, master, [forbid_all])
        search = WorldSearch(T, master, [forbid_all], adom)
        assert list(search.search()) == []
        # The fixed ground tuple already violates the denial CC: the search
        # must die at the root without branching on x at all.
        assert search.stats.nodes == 0


# ---------------------------------------------------------------------------
# engine selection surface
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_default_engine_is_propagating(self):
        from repro.ctables.possible_worlds import DEFAULT_ENGINE
        from repro.search.registry import resolve_engine_name

        assert DEFAULT_ENGINE == "propagating"
        assert resolve_engine_name(None) == "propagating"
        assert resolve_engine_name("naive") == "naive"
        assert resolve_engine_name("sat") == "sat"
        assert resolve_engine_name("parallel") == "parallel"

    def test_worldsearch_builds_default_adom(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        search = WorldSearch(workload.cinstance, workload.master, workload.constraints)
        assert search.has_world() == has_model(
            workload.cinstance, workload.master, workload.constraints, engine="naive"
        )
