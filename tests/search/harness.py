"""Reusable differential-testing harness for the world-search engines.

Any instance can be run through every engine and compared against the naive
reference enumeration in one call:

* :func:`assert_engine_parity` — identical world sets, world multisets,
  ``(valuation, world)`` pair sets, model counts and existence verdicts from
  every engine, plus an *order-identity* check between ``"parallel"`` and
  ``"propagating"`` (the parallel engine promises to reproduce the serial
  enumeration order exactly, not just the same sets);
* :func:`assert_decider_parity` — identical verdicts from an
  ``engine``-accepting decision procedure across engines;
* :func:`assert_workers_independent` — the parallel engine's results do not
  depend on the ``workers`` count or on the order shards are submitted in;
* :func:`assert_extension_engine_parity` — the engine-routed extension
  searches of :mod:`repro.completeness.extensions` (single-tuple, tableau,
  bounded) produce identical results from every engine *and* agree with
  independent brute-force oracles built straight from ``itertools.product``
  over the Adom pools plus :func:`satisfies_all` on complete instances —
  the :data:`EXTENSION_FIXTURES` family feeds it ground instances covering
  finite domains, saturated bounds, joins and comparison-laden tableaux.

New engines join the corpus by being added to :data:`ALL_ENGINES`; every
parity test in ``tests/search`` routes through this module, so a fifth
engine lands with four-way (then five-way) parity guaranteed by
construction.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.completeness.consistency import extensibility_active_domain
from repro.completeness.extensions import (
    bounded_extensions,
    has_partially_closed_extension,
    single_tuple_extensions,
    tableau_extensions,
)
from repro.constraints.containment import (
    cc,
    denial_cc,
    projection,
    relation_containment_cc,
    satisfies_all,
)
from repro.ctables.possible_worlds import (
    default_active_domain,
    has_model,
    model_count,
    models,
    models_with_valuations,
)
from repro.queries.atoms import atom, neq
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import instance
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.api import Database
from repro.search.parallel import ParallelWorldSearch
from repro.search.registry import EngineConfig

#: Every world-search engine the repository ships, reference first.
ALL_ENGINES = ("naive", "propagating", "sat", "parallel")

#: The engine the others are compared against.
REFERENCE_ENGINE = "naive"

#: The engines checked against the reference by default.
CHECKED_ENGINES = tuple(e for e in ALL_ENGINES if e != REFERENCE_ENGINE)


@dataclass
class EngineObservation:
    """Everything one engine reports about one instance."""

    engine: str
    worlds: frozenset
    world_multiset: Counter
    pairs: frozenset
    ordered_worlds: tuple
    count: int
    has: bool


def observe_engine(
    cinst, master, constraints, adom, engine, workers=None
) -> EngineObservation:
    """Run one instance through one engine, capturing every public surface."""
    return EngineObservation(
        engine=engine,
        worlds=frozenset(
            models(cinst, master, constraints, adom, engine=engine, workers=workers)
        ),
        world_multiset=Counter(
            models(
                cinst,
                master,
                constraints,
                adom,
                deduplicate=False,
                engine=engine,
                workers=workers,
            )
        ),
        pairs=frozenset(
            (frozenset(valuation.items()), world)
            for valuation, world in models_with_valuations(
                cinst, master, constraints, adom, engine=engine, workers=workers
            )
        ),
        ordered_worlds=tuple(
            models(cinst, master, constraints, adom, engine=engine, workers=workers)
        ),
        count=model_count(
            cinst, master, constraints, adom, engine=engine, workers=workers
        ),
        has=has_model(
            cinst, master, constraints, adom, engine=engine, workers=workers
        ),
    )


def assert_engine_parity(
    cinst,
    master,
    constraints,
    query=None,
    engines: Sequence[str] = CHECKED_ENGINES,
    workers: int | None = None,
    adom=None,
) -> dict[str, EngineObservation]:
    """All engines agree with the reference on every observable surface.

    Returns the per-engine observations so callers can make extra assertions
    (e.g. on expected world counts) without re-running the engines.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints, query)
    reference = observe_engine(
        cinst, master, constraints, adom, REFERENCE_ENGINE, workers=workers
    )
    observations = {REFERENCE_ENGINE: reference}
    for engine in engines:
        observed = observe_engine(
            cinst, master, constraints, adom, engine, workers=workers
        )
        observations[engine] = observed
        assert observed.worlds == reference.worlds, engine
        assert observed.world_multiset == reference.world_multiset, engine
        assert observed.pairs == reference.pairs, engine
        assert observed.count == reference.count, engine
        assert observed.has == reference.has, engine
    if "parallel" in observations and "propagating" in observations:
        # Stronger than set parity: the merged shard enumeration must be
        # order-identical to the serial propagating enumeration.
        assert (
            observations["parallel"].ordered_worlds
            == observations["propagating"].ordered_worlds
        )
    return observations


def assert_decider_parity(
    run: Callable[[str], object], engines: Sequence[str] = CHECKED_ENGINES
) -> object:
    """An ``engine``-accepting decision procedure returns one verdict for all.

    ``run`` is called once per engine (reference first) and every verdict is
    compared against the reference's; the reference verdict is returned.
    """
    reference = run(REFERENCE_ENGINE)
    for engine in engines:
        assert run(engine) == reference, engine
    return reference


def parallel_observation(
    cinst,
    master,
    constraints,
    adom=None,
    workers: int | None = 2,
    shard_order: str = "pool",
) -> tuple[tuple, bool]:
    """(ordered pair list, existence) from a *forced* parallel run.

    ``min_parallel_valuations=0`` disables the serial fallback, so even tiny
    instances exercise the sharded process-pool path.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints)

    def build() -> ParallelWorldSearch:
        return ParallelWorldSearch(
            cinst,
            master,
            constraints,
            adom,
            workers=workers,
            min_parallel_valuations=0,
            shard_order=shard_order,
        )

    pairs = tuple(
        (frozenset(valuation.items()), world) for valuation, world in build().search()
    )
    return pairs, build().has_world()


def assert_workers_independent(
    cinst,
    master,
    constraints,
    adom=None,
    workers_settings: Sequence[int | None] = (1, 2, None),
) -> None:
    """Parallel results are identical across worker counts and shard orders.

    ``None`` means the default (one worker per available CPU); ``workers=1``
    takes the serial fallback, so this also pins parallel-vs-serial parity.
    Each worker count is additionally run with reversed shard submission.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints)
    reference = None
    for workers in workers_settings:
        for shard_order in ("pool", "reversed"):
            observed = parallel_observation(
                cinst,
                master,
                constraints,
                adom,
                workers=workers,
                shard_order=shard_order,
            )
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (workers, shard_order)


# ---------------------------------------------------------------------------
# extension-search parity (engine-routed completeness/extensions.py)
# ---------------------------------------------------------------------------
def oracle_candidate_rows(relation, adom):
    """The raw Adom candidate universe of a relation, straight from product."""
    pools = [adom.pool_for(attribute.domain) for attribute in relation.attributes]
    return [tuple(combo) for combo in itertools.product(*pools)]


def oracle_single_tuple_extensions(base, master, constraints, adom):
    """All partially closed ``I ∪ {t}`` with ``t`` an Adom tuple not in ``I``."""
    extensions = set()
    for name in base.schema.relation_names:
        for row in oracle_candidate_rows(base.schema[name], adom):
            if row in base.relation(name).rows:
                continue
            extended = base.with_tuple(name, row)
            if satisfies_all(extended, master, constraints):
                extensions.add(extended)
    return extensions


def oracle_tableau_extensions(base, query, master, constraints, adom):
    """All ``(ν, I ∪ ν(T_Q))`` with comparisons satisfied and ``V`` preserved."""
    from repro.queries.tableau import freeze

    variables = sorted(query.variables(), key=lambda v: v.name)
    pools = []
    for variable in variables:
        pool = adom.ordered()
        for a in query.atoms:
            if a.relation not in base.schema:
                continue
            rel_schema = base.schema[a.relation]
            for attribute, term in zip(rel_schema.attributes, a.terms):
                if term == variable and attribute.domain.is_finite:
                    pool = [v for v in pool if v in adom.pool_for(attribute.domain)]
        pools.append(pool)
    results = set()
    for combo in itertools.product(*pools):
        valuation = dict(zip(variables, combo))
        if not all(c.evaluate(valuation) for c in query.comparisons):
            continue
        extended = base.with_tuples(freeze(query.atoms, valuation))
        if satisfies_all(extended, master, constraints):
            results.add((frozenset(valuation.items()), extended))
    return results


def oracle_bounded_extensions(base, master, constraints, adom, max_new_tuples):
    """All partially closed supersets of ``I`` adding ≤ k Adom tuples."""
    universe = [
        (name, row)
        for name in base.schema.relation_names
        for row in oracle_candidate_rows(base.schema[name], adom)
        if row not in base.relation(name).rows
    ]
    results = set()
    for count in range(1, max_new_tuples + 1):
        for combo in itertools.combinations(universe, count):
            extended = base
            for name, row in combo:
                extended = extended.with_tuple(name, row)
            if extended != base and satisfies_all(extended, master, constraints):
                results.add(extended)
    return results


@dataclass(frozen=True)
class ExtensionFixture:
    """One extension-search input: a ground instance plus its CC context."""

    label: str
    base: object  # GroundInstance
    master: object  # MasterData
    constraints: tuple
    query: object  # ConjunctiveQuery driving the tableau search
    max_new_tuples: int = 2


def _extension_fixtures() -> list[ExtensionFixture]:
    x, y = var("x"), var("y")
    bool_pair = database_schema(
        RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
    )
    master_pair = MasterData(
        database_schema(schema("Rm", "A", "B")), {"Rm": [(0, 0), (1, 1)]}
    )
    bound = cc(
        cq("bound", [x, y], atoms=[atom("R", x, y)]),
        projection("Rm", "A", "B"),
        name="r⊆rm",
    )
    two_rel = database_schema(schema("P", "A", "B"), schema("S", "A"))
    two_master = MasterData(
        database_schema(schema("Pm", "A", "B"), schema("Sm", "A")),
        {"Pm": [("a", "b"), ("b", "c")], "Sm": [("a",), ("c",)]},
    )
    saturated_master = MasterData(
        database_schema(
            RelationSchema("Rm", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
        ),
        {"Rm": [(1, 1)]},
    )
    return [
        ExtensionFixture(
            label="bool-pair-empty",
            base=instance(bool_pair, R=[]),
            master=master_pair,
            constraints=(bound,),
            query=cq("Q", [x, y], atoms=[atom("R", x, y)]),
        ),
        ExtensionFixture(
            label="bool-pair-seeded",
            base=instance(bool_pair, R=[(0, 0)]),
            master=master_pair,
            constraints=(bound,),
            query=cq("Q", [x], atoms=[atom("R", x, y)], comparisons=[neq(x, y)]),
        ),
        ExtensionFixture(
            label="saturated-bound",
            base=instance(bool_pair, R=[(1, 1)]),
            master=saturated_master,
            constraints=(relation_containment_cc("R", bool_pair, "Rm"),),
            query=cq("Q", [x], atoms=[atom("R", x, x)]),
        ),
        ExtensionFixture(
            label="two-relations-joined",
            base=instance(two_rel, P=[("a", "b")], S=[("a",)]),
            master=two_master,
            constraints=(
                cc(
                    cq("p_bound", [x, y], atoms=[atom("P", x, y)]),
                    projection("Pm", "A", "B"),
                    name="p⊆pm",
                ),
                cc(
                    cq("s_bound", [x], atoms=[atom("S", x)]),
                    projection("Sm", "A"),
                    name="s⊆sm",
                ),
                denial_cc(
                    cq("no_join", [x], atoms=[atom("P", x, y), atom("S", y)]),
                    name="p⋈s=∅",
                ),
            ),
            query=cq("Q", [x, y], atoms=[atom("P", x, y), atom("S", x)]),
            max_new_tuples=1,
        ),
    ]


#: The extension-search fixture family every engine is run over.
EXTENSION_FIXTURES = _extension_fixtures()


@dataclass
class ExtensionObservation:
    """Everything one engine reports about one extension-search fixture."""

    engine: str
    single: frozenset
    tableau: frozenset
    bounded: frozenset
    has_extension: bool


def observe_extensions(
    fixture: ExtensionFixture, engine: str, workers=None
) -> ExtensionObservation:
    """Run one fixture's three extension searches through one engine."""
    adom = extensibility_active_domain(
        fixture.base, fixture.master, list(fixture.constraints)
    )
    return ExtensionObservation(
        engine=engine,
        single=frozenset(
            single_tuple_extensions(
                fixture.base, fixture.master, fixture.constraints, adom,
                engine=engine, workers=workers,
            )
        ),
        tableau=frozenset(
            (frozenset(valuation.items()), extended)
            for valuation, extended in tableau_extensions(
                fixture.base, fixture.query, fixture.master,
                fixture.constraints, adom, engine=engine, workers=workers,
            )
        ),
        bounded=frozenset(
            bounded_extensions(
                fixture.base, fixture.master, fixture.constraints, adom,
                max_new_tuples=fixture.max_new_tuples,
                engine=engine, workers=workers,
            )
        ),
        has_extension=has_partially_closed_extension(
            fixture.base, fixture.master, fixture.constraints, adom,
            engine=engine, workers=workers,
        ),
    )


def assert_extension_engine_parity(
    fixture: ExtensionFixture,
    engines: Sequence[str] = CHECKED_ENGINES,
    workers=None,
) -> dict[str, ExtensionObservation]:
    """Every engine agrees with the naive reference *and* the oracles."""
    adom = extensibility_active_domain(
        fixture.base, fixture.master, list(fixture.constraints)
    )
    expected_single = oracle_single_tuple_extensions(
        fixture.base, fixture.master, fixture.constraints, adom
    )
    expected_tableau = oracle_tableau_extensions(
        fixture.base, fixture.query, fixture.master, fixture.constraints, adom
    )
    expected_bounded = oracle_bounded_extensions(
        fixture.base, fixture.master, fixture.constraints, adom,
        fixture.max_new_tuples,
    )
    reference = observe_extensions(fixture, REFERENCE_ENGINE, workers=workers)
    assert reference.single == expected_single, fixture.label
    assert reference.tableau == expected_tableau, fixture.label
    assert reference.bounded == expected_bounded, fixture.label
    assert reference.has_extension == bool(expected_single), fixture.label
    observations = {REFERENCE_ENGINE: reference}
    for engine in engines:
        observed = observe_extensions(fixture, engine, workers=workers)
        observations[engine] = observed
        assert observed.single == reference.single, (fixture.label, engine)
        assert observed.tableau == reference.tableau, (fixture.label, engine)
        assert observed.bounded == reference.bounded, (fixture.label, engine)
        assert observed.has_extension == reference.has_extension, (
            fixture.label,
            engine,
        )
    return observations


# ---------------------------------------------------------------------------
# update-stream parity (incremental Database.update vs rebuild oracle)
# ---------------------------------------------------------------------------
def observe_database(db, engine, workers=None) -> tuple:
    """One facade's observable surface under one engine, canonicalised.

    Mirrors :func:`observe_engine` at the :class:`repro.api.Database` level:
    world set, ``(valuation, world)`` pair set, model count and consistency
    verdict.  Returned as a plain tuple so whole observations compare with
    ``==`` across engines and across facades.
    """
    config = EngineConfig(engine, workers=workers)
    worlds = frozenset(db.worlds(engine=config))
    pairs = frozenset(
        (frozenset(valuation.items()), world)
        for valuation, world in db.valuations(engine=config)
    )
    count = db.count(engine=config).value
    has = bool(db.is_consistent(engine=config, witness=False))
    return (worlds, pairs, count, has)


def assert_update_stream_parity(
    cinst,
    master,
    constraints,
    script,
    engines: Sequence[str] = CHECKED_ENGINES,
    workers: int | None = None,
    fork_check: bool = True,
):
    """One incremental facade tracks a rebuild oracle across an update script.

    A single :class:`repro.api.Database` (with the incremental-capable SAT
    engine as its default) applies every :class:`UpdateStep` of ``script``
    via :meth:`~repro.api.Database.update`.  After *each* step, a fresh
    facade is rebuilt from scratch over the updated c-instance and both are
    observed through the naive reference and every checked engine: the
    incremental facade must be indistinguishable from the rebuild on world
    sets, ``(valuation, world)`` pairs, model counts and consistency — i.e.
    the mutated cached state (checker sessions, live SAT solver, decision
    cache) never leaks a stale answer.

    With ``fork_check`` the midpoint and final states are additionally run
    through :func:`parallel_observation` (serial fallback disabled), so
    fork-based parallel workers prove they observe the post-update state.

    Returns the incremental facade so callers can assert on its final state.
    """
    db = Database(cinst, master, constraints, engine="sat")
    steps = list(script)
    fork_steps = {len(steps) // 2, len(steps) - 1} if (fork_check and steps) else set()
    for index, step in enumerate(steps):
        if step.kind == "add":
            db.update(add_rows={step.relation: [step.row]})
        else:
            db.update(drop_rows={step.relation: [step.row]})
        oracle = Database(db.cinstance, master, constraints, engine="sat")
        reference = observe_database(oracle, REFERENCE_ENGINE, workers=workers)
        for engine in engines:
            incremental = observe_database(db, engine, workers=workers)
            assert incremental == reference, (index, step, engine)
            rebuilt = observe_database(oracle, engine, workers=workers)
            assert rebuilt == reference, (index, step, engine)
        if index in fork_steps:
            pairs, has = parallel_observation(
                db.cinstance, master, constraints, adom=db.adom(), workers=workers
            )
            assert frozenset(pairs) == reference[1], (index, step)
            assert has == reference[3], (index, step)
    return db
