"""Reusable differential-testing harness for the world-search engines.

Any instance can be run through every engine and compared against the naive
reference enumeration in one call:

* :func:`assert_engine_parity` — identical world sets, world multisets,
  ``(valuation, world)`` pair sets, model counts and existence verdicts from
  every engine, plus an *order-identity* check between ``"parallel"`` and
  ``"propagating"`` (the parallel engine promises to reproduce the serial
  enumeration order exactly, not just the same sets);
* :func:`assert_decider_parity` — identical verdicts from an
  ``engine``-accepting decision procedure across engines;
* :func:`assert_workers_independent` — the parallel engine's results do not
  depend on the ``workers`` count or on the order shards are submitted in.

New engines join the corpus by being added to :data:`ALL_ENGINES`; every
parity test in ``tests/search`` routes through this module, so a fifth
engine lands with four-way (then five-way) parity guaranteed by
construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ctables.possible_worlds import (
    default_active_domain,
    has_model,
    model_count,
    models,
    models_with_valuations,
)
from repro.search.parallel import ParallelWorldSearch

#: Every world-search engine the repository ships, reference first.
ALL_ENGINES = ("naive", "propagating", "sat", "parallel")

#: The engine the others are compared against.
REFERENCE_ENGINE = "naive"

#: The engines checked against the reference by default.
CHECKED_ENGINES = tuple(e for e in ALL_ENGINES if e != REFERENCE_ENGINE)


@dataclass
class EngineObservation:
    """Everything one engine reports about one instance."""

    engine: str
    worlds: frozenset
    world_multiset: Counter
    pairs: frozenset
    ordered_worlds: tuple
    count: int
    has: bool


def observe_engine(
    cinst, master, constraints, adom, engine, workers=None
) -> EngineObservation:
    """Run one instance through one engine, capturing every public surface."""
    return EngineObservation(
        engine=engine,
        worlds=frozenset(
            models(cinst, master, constraints, adom, engine=engine, workers=workers)
        ),
        world_multiset=Counter(
            models(
                cinst,
                master,
                constraints,
                adom,
                deduplicate=False,
                engine=engine,
                workers=workers,
            )
        ),
        pairs=frozenset(
            (frozenset(valuation.items()), world)
            for valuation, world in models_with_valuations(
                cinst, master, constraints, adom, engine=engine, workers=workers
            )
        ),
        ordered_worlds=tuple(
            models(cinst, master, constraints, adom, engine=engine, workers=workers)
        ),
        count=model_count(
            cinst, master, constraints, adom, engine=engine, workers=workers
        ),
        has=has_model(
            cinst, master, constraints, adom, engine=engine, workers=workers
        ),
    )


def assert_engine_parity(
    cinst,
    master,
    constraints,
    query=None,
    engines: Sequence[str] = CHECKED_ENGINES,
    workers: int | None = None,
    adom=None,
) -> dict[str, EngineObservation]:
    """All engines agree with the reference on every observable surface.

    Returns the per-engine observations so callers can make extra assertions
    (e.g. on expected world counts) without re-running the engines.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints, query)
    reference = observe_engine(
        cinst, master, constraints, adom, REFERENCE_ENGINE, workers=workers
    )
    observations = {REFERENCE_ENGINE: reference}
    for engine in engines:
        observed = observe_engine(
            cinst, master, constraints, adom, engine, workers=workers
        )
        observations[engine] = observed
        assert observed.worlds == reference.worlds, engine
        assert observed.world_multiset == reference.world_multiset, engine
        assert observed.pairs == reference.pairs, engine
        assert observed.count == reference.count, engine
        assert observed.has == reference.has, engine
    if "parallel" in observations and "propagating" in observations:
        # Stronger than set parity: the merged shard enumeration must be
        # order-identical to the serial propagating enumeration.
        assert (
            observations["parallel"].ordered_worlds
            == observations["propagating"].ordered_worlds
        )
    return observations


def assert_decider_parity(
    run: Callable[[str], object], engines: Sequence[str] = CHECKED_ENGINES
) -> object:
    """An ``engine``-accepting decision procedure returns one verdict for all.

    ``run`` is called once per engine (reference first) and every verdict is
    compared against the reference's; the reference verdict is returned.
    """
    reference = run(REFERENCE_ENGINE)
    for engine in engines:
        assert run(engine) == reference, engine
    return reference


def parallel_observation(
    cinst,
    master,
    constraints,
    adom=None,
    workers: int | None = 2,
    shard_order: str = "pool",
) -> tuple[tuple, bool]:
    """(ordered pair list, existence) from a *forced* parallel run.

    ``min_parallel_valuations=0`` disables the serial fallback, so even tiny
    instances exercise the sharded process-pool path.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints)

    def build() -> ParallelWorldSearch:
        return ParallelWorldSearch(
            cinst,
            master,
            constraints,
            adom,
            workers=workers,
            min_parallel_valuations=0,
            shard_order=shard_order,
        )

    pairs = tuple(
        (frozenset(valuation.items()), world) for valuation, world in build().search()
    )
    return pairs, build().has_world()


def assert_workers_independent(
    cinst,
    master,
    constraints,
    adom=None,
    workers_settings: Sequence[int | None] = (1, 2, None),
) -> None:
    """Parallel results are identical across worker counts and shard orders.

    ``None`` means the default (one worker per available CPU); ``workers=1``
    takes the serial fallback, so this also pins parallel-vs-serial parity.
    Each worker count is additionally run with reversed shard submission.
    """
    if adom is None:
        adom = default_active_domain(cinst, master, constraints)
    reference = None
    for workers in workers_settings:
        for shard_order in ("pool", "reversed"):
            observed = parallel_observation(
                cinst,
                master,
                constraints,
                adom,
                workers=workers,
                shard_order=shard_order,
            )
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (workers, shard_order)
