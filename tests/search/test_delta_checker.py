"""Differential suite for the delta-evaluated :class:`ConstraintChecker`.

The semi-naive ``mode="delta"`` checker must be observationally identical to
the recompute-from-scratch ``mode="full"`` oracle — and both must agree with
the stateless full evaluation of the current fact store — on **every**
push/pop sequence, not only the well-behaved ones the search engine produces.
The hypothesis properties below drive randomly generated constraint sets,
fact rows and operation sequences through both modes in lockstep; the
hand-written regressions pin the trickiest protocol corners (pushing after a
violation, popping back across a violation, pushing a tuple that is already
present) and the engine-level equivalence (identical worlds *and* identical
node/prune counters from :class:`WorldSearch` under either checker mode).

Every test carries the ``delta_differential`` marker so ``scripts/check.sh``
can run the semantics gate as a dedicated step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.containment import cc, denial_cc, projection
from repro.ctables.cinstance import cinstance
from repro.ctables.possible_worlds import default_active_domain
from repro.exceptions import SearchError
from repro.queries.atoms import atom, eq, neq
from repro.queries.cq import boolean_cq, cq
from repro.queries.terms import var
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema
from repro.search.engine import WorldSearch
from repro.search.propagation import CHECKER_MODES, ConstraintChecker

pytestmark = pytest.mark.delta_differential

x, y, z, w = var("x"), var("y"), var("z"), var("w")

DB_SCHEMA = database_schema(schema("R", "A", "B"), schema("S", "A"))
MASTER = MasterData(
    database_schema(schema("Rm", "A", "B"), schema("Sm", "A")),
    {"Rm": [(0, 0), (1, 1), (1, 2), (2, 0)], "Sm": [(0,), (2,)]},
)

#: A pool of structurally diverse constraints the properties sample from:
#: single-atom containment, multi-atom joins (the delta evaluator's seeding
#: target), cross-relation joins, (in)equality comparisons and an
#: equality-only-bound head variable.
CONSTRAINT_POOL = [
    cc(
        cq("bound", [x, y], atoms=[atom("R", x, y)]),
        projection("Rm", "A", "B"),
        name="r⊆rm",
    ),
    cc(
        cq("s_bound", [x], atoms=[atom("S", x)]),
        projection("Sm", "A"),
        name="s⊆sm",
    ),
    denial_cc(
        boolean_cq(
            "no_path3",
            atoms=[atom("R", x, y), atom("R", y, z), atom("R", z, w)],
        ),
        name="no-3-path",
    ),
    denial_cc(
        boolean_cq(
            "fd",
            atoms=[atom("R", x, y), atom("R", x, z)],
            comparisons=[neq(y, z)],
        ),
        name="fd:A→B",
    ),
    cc(
        cq("join", [y], atoms=[atom("R", x, y), atom("S", y)]),
        projection("Sm", "A"),
        name="r⋈s⊆sm",
    ),
    cc(
        cq(
            "eq_head",
            [x, z],
            atoms=[atom("R", x, y)],
            comparisons=[eq(z, 1)],
        ),
        projection("Rm", "A", "B"),
        name="eq-bound-head",
    ),
]

r_rows = st.tuples(st.integers(0, 2), st.integers(0, 2))
s_rows = st.tuples(st.integers(0, 2))
push_ops = st.one_of(
    st.tuples(st.just("push"), st.just("R"), r_rows),
    st.tuples(st.just("push"), st.just("S"), s_rows),
    st.tuples(st.just("pop"), st.just(""), st.just(())),
)
constraint_sets = st.lists(
    st.sampled_from(range(len(CONSTRAINT_POOL))), unique=True, max_size=4
).map(lambda indices: [CONSTRAINT_POOL[i] for i in indices])


def lockstep(constraints, operations):
    """Drive delta and full sessions in lockstep, asserting agreement."""
    delta = ConstraintChecker(MASTER, constraints, mode="delta")
    full = ConstraintChecker(MASTER, constraints, mode="full")
    stateless = ConstraintChecker(MASTER, constraints, mode="full")
    delta_session = delta.session(DB_SCHEMA.relation_names)
    full_session = full.session(DB_SCHEMA.relation_names)
    for op, relation, row in operations:
        if op == "push":
            delta_verdict = delta_session.push(relation, row)
            full_verdict = full_session.push(relation, row)
            assert delta_verdict == full_verdict, (relation, row)
        else:
            if not delta_session.depth:
                continue
            delta_session.pop()
            full_session.pop()
        assert delta_session.facts == full_session.facts
        assert delta_session.is_satisfied == full_session.is_satisfied
        # The ground truth: the incremental verdict must equal a stateless
        # full evaluation of the current store, at every step.
        assert delta_session.is_satisfied == stateless.check(delta_session.facts)
        assert (
            delta_session.violated_constraints()
            == full_session.violated_constraints()
        )
    return delta_session, full_session


class TestDeltaFullAgreement:
    @settings(max_examples=120, deadline=None)
    @given(constraints=constraint_sets, operations=st.lists(push_ops, max_size=24))
    def test_modes_agree_on_every_push_pop_sequence(self, constraints, operations):
        lockstep(constraints, operations)

    @settings(max_examples=60, deadline=None)
    @given(constraints=constraint_sets, operations=st.lists(push_ops, max_size=16))
    def test_full_unwind_restores_the_empty_store(self, constraints, operations):
        delta_session, _full = lockstep(constraints, operations)
        delta_session.pop_to(0)
        assert all(not rows for rows in delta_session.facts.values())
        assert delta_session.is_satisfied == delta_session.check_full()


class TestProtocolRegressions:
    def test_pop_after_violation_restores_satisfaction(self):
        constraints = [CONSTRAINT_POOL[0]]  # R ⊆ Rm
        for mode in CHECKER_MODES:
            checker = ConstraintChecker(MASTER, constraints, mode=mode)
            session = checker.session(DB_SCHEMA.relation_names)
            assert session.push("R", (1, 1)) is True
            assert session.push("R", (2, 2)) is False  # (2,2) ∉ Rm
            assert not session.is_satisfied
            session.pop()
            assert session.is_satisfied, mode
            assert session.facts["R"] == {(1, 1)}

    def test_push_after_unpopped_violation_stays_violated(self):
        constraints = [CONSTRAINT_POOL[0]]
        for mode in CHECKER_MODES:
            session = ConstraintChecker(MASTER, constraints, mode=mode).session(
                DB_SCHEMA.relation_names
            )
            assert session.push("R", (2, 2)) is False
            # A later, individually fine push must not mask the violation...
            assert session.push("R", (1, 1)) is False
            # ...and popping it must not clear the violation either.
            session.pop()
            assert not session.is_satisfied
            session.pop()
            assert session.is_satisfied

    def test_repeated_tuple_pushes_are_popped_symmetrically(self):
        constraints = [CONSTRAINT_POOL[3]]  # FD denial
        for mode in CHECKER_MODES:
            session = ConstraintChecker(MASTER, constraints, mode=mode).session(
                DB_SCHEMA.relation_names
            )
            assert session.push("R", (0, 1)) is True
            assert session.push("R", (0, 1)) is True  # no-op duplicate
            session.pop()  # pops the duplicate, not the tuple
            assert session.facts["R"] == {(0, 1)}
            assert session.push("R", (0, 2)) is False  # FD violation
            session.pop_to(0)
            assert session.is_satisfied
            assert not session.facts["R"]

    def test_repeated_push_while_violated_reports_violation(self):
        constraints = [CONSTRAINT_POOL[0]]
        for mode in CHECKER_MODES:
            session = ConstraintChecker(MASTER, constraints, mode=mode).session()
            assert session.push("R", (2, 2)) is False
            assert session.push("R", (2, 2)) is False  # duplicate of the culprit
            session.pop()
            assert not session.is_satisfied  # the original push still stands
            session.pop()
            assert session.is_satisfied

    def test_default_session_convenience_and_pop_underflow(self):
        checker = ConstraintChecker(MASTER, [CONSTRAINT_POOL[0]])
        assert checker.push("R", (1, 1)) is True
        checker.pop()
        with pytest.raises(SearchError):
            checker.pop()
        session = checker.reset(DB_SCHEMA.relation_names)
        with pytest.raises(SearchError):
            session.pop()

    def test_invalid_mode_is_rejected(self):
        with pytest.raises(SearchError):
            ConstraintChecker(MASTER, [], mode="lazy")

    def test_atom_free_constraint_seeds_base_violation(self):
        # A constant-only LHS produces an answer over the empty store; no
        # push ever touches it, so the verdict must be fixed at session
        # creation for both modes.
        unsatisfiable = denial_cc(
            boolean_cq("always", comparisons=[eq(1, 1)]), name="⊥"
        )
        for mode in CHECKER_MODES:
            session = ConstraintChecker(MASTER, [unsatisfiable], mode=mode).session(
                DB_SCHEMA.relation_names
            )
            assert not session.is_satisfied
            assert session.push("R", (1, 1)) is False


class TestAtomFreeConstraintParity:
    """Regression: base violations must surface even when nothing is pushed.

    An always-violated atom-free constraint never touches a relation, so the
    propagating engine's push-based checking used to miss it on instances
    whose root level grounds no rows — yielding worlds the naive engine
    rejects.
    """

    def test_engines_agree_on_empty_instance(self):
        from repro.ctables.possible_worlds import has_model, models

        forbid = denial_cc(boolean_cq("always", comparisons=[eq(1, 1)]), name="⊥")
        T = cinstance(DB_SCHEMA)
        for engine in ("naive", "propagating", "sat", "parallel"):
            assert list(models(T, MASTER, [forbid], engine=engine)) == [], engine
            assert has_model(T, MASTER, [forbid], engine=engine) is False, engine

    def test_engines_agree_with_variables_present(self):
        from repro.ctables.possible_worlds import models

        forbid = denial_cc(boolean_cq("always", comparisons=[eq(1, 1)]), name="⊥")
        T = cinstance(DB_SCHEMA, R=[(x, y)])
        for engine in ("naive", "propagating", "sat", "parallel"):
            assert list(models(T, MASTER, [forbid], engine=engine)) == [], engine


class TestEngineLevelDifferential:
    """WorldSearch under a delta checker ≡ WorldSearch under a full checker."""

    CASES = [
        # (c-instance rows, constraints)
        ({"R": [(x, y)]}, [CONSTRAINT_POOL[0]]),
        ({"R": [(0, x), (1, y)], "S": [(z,)]}, [CONSTRAINT_POOL[0], CONSTRAINT_POOL[4]]),
        ({"R": [(x, y), (y, z)]}, [CONSTRAINT_POOL[2], CONSTRAINT_POOL[3]]),
        ({"R": [(2, 2)], "S": [(x,)]}, [CONSTRAINT_POOL[0]]),  # ground violation
    ]

    @pytest.mark.parametrize("rows,constraints", CASES)
    def test_same_worlds_and_same_counters(self, rows, constraints):
        T = cinstance(DB_SCHEMA, **{name: rs for name, rs in rows.items()})
        adom = default_active_domain(T, MASTER, constraints)
        results = {}
        for mode in CHECKER_MODES:
            search = WorldSearch(
                T, MASTER, constraints, adom,
                checker=ConstraintChecker(MASTER, constraints, mode=mode),
            )
            pairs = [
                (frozenset(valuation.items()), world)
                for valuation, world in search.search()
            ]
            results[mode] = (pairs, search.stats.nodes, search.stats.pruned)
        assert results["delta"] == results["full"]

    @settings(max_examples=40, deadline=None)
    @given(
        constraints=constraint_sets,
        ground=st.lists(r_rows, max_size=2),
        seed_rows=st.integers(1, 2),
    )
    def test_random_instances_enumerate_identically(
        self, constraints, ground, seed_rows
    ):
        rows = [tuple(row) for row in ground]
        rows += [(var(f"h{i}"), var(f"t{i}")) for i in range(seed_rows)]
        T = cinstance(DB_SCHEMA, R=rows)
        adom = default_active_domain(T, MASTER, constraints)
        observed = {}
        for mode in CHECKER_MODES:
            search = WorldSearch(
                T, MASTER, constraints, adom,
                checker=ConstraintChecker(MASTER, constraints, mode=mode),
            )
            pairs = [
                (frozenset(valuation.items()), world)
                for valuation, world in search.search()
            ]
            observed[mode] = (pairs, search.stats.nodes, search.stats.pruned)
        assert observed["delta"] == observed["full"]
