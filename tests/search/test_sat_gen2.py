"""SAT engine generation 2: CEGAR, first-UIP learning, component counting.

This module covers what is *new* in the gen-2 SAT stack plus the latent-bug
regressions fixed alongside it:

* the solver-stats ledger accumulates across ``SATWorldSearch`` calls
  instead of being rebound per solve (the ``_solver()`` rebinding bug);
* ``IncrementalSATSession.has_world`` reports ``reused_solver`` correctly,
  including on the trivially-unsat early return;
* the CEGAR lazy encoding reaches the same verdicts/worlds as the eager
  encoding and surfaces its refinement rounds in the stats;
* component-caching counting agrees with blocking-clause enumeration and
  the closed-form world count, and surfaces component/cache-hit stats;
* the new knobs flow end-to-end through ``EngineConfig(options=...)`` into
  ``Database`` decisions and ``DecisionStats``.
"""

from __future__ import annotations

import pytest

from repro.api import Database, EngineConfig
from repro.ctables.cinstance import cinstance
from repro.exceptions import ReductionError
from repro.queries.terms import var
from repro.relational.master import empty_master
from repro.relational.schema import database_schema, schema
from repro.search.engine import WorldSearch
from repro.search.sat_engine import IncrementalSATSession, SATWorldSearch
from repro.ctables.possible_worlds import default_active_domain
from repro.workloads.generator import (
    disconnected_components_workload,
    inequality_chain_workload,
    wide_pool_workload,
)

x, y = var("x"), var("y")

PAIR_SCHEMA = database_schema(schema("R", "A", "B"))
EMPTY_MASTER = empty_master(database_schema(schema("M", "A")))


def _observe(search):
    """World multiset of one search object, as (count, set-of-worlds)."""
    worlds = [
        frozenset((name, row) for name, row in world.tuples())
        for world in search.worlds()
    ]
    return len(worlds), set(worlds)


# ---------------------------------------------------------------------------
# S1: the stats ledger accumulates across calls
# ---------------------------------------------------------------------------
class TestSolverStatsAccumulation:
    def test_solver_stats_accumulate_across_calls(self):
        # has_world() then count_worlds() on one search: the second call must
        # add to the same ledger, not silently start a new one.
        workload = inequality_chain_workload(3, close_cycle=False)
        search = SATWorldSearch(
            workload.cinstance, workload.master, workload.constraints
        )
        assert search.has_world()
        ledger = search.stats.solver
        after_first = ledger.solve_calls
        assert after_first == 1
        search.count_worlds()
        assert search.stats.solver is ledger, "ledger was rebound"
        assert ledger.solve_calls > after_first

    def test_fresh_search_still_reports_single_sat_call(self):
        T = cinstance(PAIR_SCHEMA, R=[(x, "c")])
        search = SATWorldSearch(T, EMPTY_MASTER, [])
        assert search.has_world()
        assert search.stats.solver.solve_calls == 1


# ---------------------------------------------------------------------------
# S2: reused_solver on the incremental session
# ---------------------------------------------------------------------------
def _session(workload, **kwargs):
    adom = default_active_domain(
        workload.cinstance, workload.master, workload.constraints
    )
    return IncrementalSATSession(
        workload.cinstance, workload.master, workload.constraints, adom, **kwargs
    )


class TestReusedSolverFlag:
    def test_first_call_reports_fresh_then_reused(self):
        workload = inequality_chain_workload(3, close_cycle=False)
        session = _session(workload)
        assert session.has_world()
        assert session.stats.reused_solver is False
        assert session.has_world()
        assert session.stats.reused_solver is True

    def test_trivially_unsat_early_return_does_not_claim_reuse(self):
        # The pre-fix code set reused_solver before the trivially-unsat
        # early return, so a session that never solved claimed reuse.
        from repro.constraints.containment import denial_cc
        from repro.queries.atoms import atom
        from repro.queries.cq import cq

        forbid_all = denial_cc(cq("q", [x, y], atoms=[atom("R", x, y)]))
        T = cinstance(PAIR_SCHEMA, R=[("c", "d")])
        adom = default_active_domain(T, EMPTY_MASTER, [forbid_all])
        session = IncrementalSATSession(T, EMPTY_MASTER, [forbid_all], adom)
        assert session.has_world() is False
        assert session.stats.reused_solver is False


# ---------------------------------------------------------------------------
# CEGAR parity and stats
# ---------------------------------------------------------------------------
CEGAR_WORKLOADS = [
    pytest.param(lambda: inequality_chain_workload(3, close_cycle=False), id="chain-open"),
    pytest.param(lambda: inequality_chain_workload(3, close_cycle=True), id="chain-odd-cycle"),
    pytest.param(lambda: wide_pool_workload(rows=4, values_per_key=3), id="wide-pool"),
    pytest.param(
        lambda: disconnected_components_workload(components=2, rows_per_component=2),
        id="components",
    ),
]


class TestCEGAR:
    @pytest.mark.parametrize("make", CEGAR_WORKLOADS)
    def test_cegar_matches_eager_worlds_and_count(self, make):
        workload = make()
        args = (workload.cinstance, workload.master, workload.constraints)
        eager = SATWorldSearch(*args)
        lazy = SATWorldSearch(*args, cegar=True)
        assert _observe(lazy) == _observe(eager)
        assert (
            SATWorldSearch(*args, cegar=True).count_worlds()
            == SATWorldSearch(*args).count_worlds()
        )
        assert (
            SATWorldSearch(*args, cegar=True).has_world()
            == SATWorldSearch(*args).has_world()
        )

    def test_lazy_encoding_starts_smaller_and_reports_rounds(self):
        workload = wide_pool_workload(rows=4, values_per_key=3)
        args = (workload.cinstance, workload.master, workload.constraints)
        eager = SATWorldSearch(*args)
        lazy = SATWorldSearch(*args, cegar=True)
        assert lazy._encoding.stats.lazy is True
        assert len(lazy._encoding.clauses) < len(eager._encoding.clauses)
        list(lazy.worlds())
        # Full enumeration of a constrained instance must have refined.
        assert lazy._encoding.stats.cegar_rounds > 0

    def test_session_cegar_survives_updates(self):
        # A session in CEGAR mode keeps its refinement clauses across ground
        # updates: verdicts must track an eagerly rebuilt oracle at every step.
        T = cinstance(PAIR_SCHEMA, R=[(x, "c"), (y, "d")])
        from repro.constraints.containment import denial_cc
        from repro.queries.atoms import atom, neq
        from repro.queries.cq import boolean_cq

        fd = denial_cc(
            boolean_cq(
                "fd",
                atoms=[atom("R", x, "c"), atom("R", y, "c")],
                comparisons=[neq(x, y)],
            ),
            name="fd",
        )
        adom = default_active_domain(T, EMPTY_MASTER, [fd])
        session = IncrementalSATSession(T, EMPTY_MASTER, [fd], adom, cegar=True)
        assert session.has_world() == SATWorldSearch(T, EMPTY_MASTER, [fd]).has_world()
        # Ground adds over the existing constants (the session's contract:
        # the active domain must stay fixed) stream through the lazy encoder;
        # verdict and count parity with a rebuilt oracle hold at every step.
        steps = [("R", ("d", "d")), ("R", ("d", "c"))]
        current = T
        for relation, ground in steps:
            current = current.with_row(relation, ground)
            session.apply(current, [(relation, ground)], [])
            oracle = SATWorldSearch(current, EMPTY_MASTER, [fd], checker=None)
            assert session.has_world() == oracle.has_world()
        assert session.count_worlds() == SATWorldSearch(
            current, EMPTY_MASTER, [fd]
        ).count_worlds()


# ---------------------------------------------------------------------------
# component-caching counting
# ---------------------------------------------------------------------------
class TestComponentCounting:
    @pytest.mark.parametrize("components,rows,values,width", [
        (1, 2, 3, 1),
        (2, 2, 3, 1),
        (3, 2, 2, 2),
    ])
    def test_component_count_matches_enumeration_and_closed_form(
        self, components, rows, values, width
    ):
        workload = disconnected_components_workload(
            components=components,
            rows_per_component=rows,
            values=values,
            row_width=width,
        )
        args = (workload.cinstance, workload.master, workload.constraints)
        expected = workload.world_count
        assert SATWorldSearch(*args).count_worlds() == expected
        component_search = SATWorldSearch(*args, component_counting=True)
        assert component_search.count_worlds() == expected
        assert component_search.stats.components == components
        # Identical components hash to one fingerprint: all but the first hit.
        assert component_search.stats.component_cache_hits == components - 1
        assert WorldSearch(*args).count_worlds() == expected

    def test_component_counting_composes_with_cegar(self):
        workload = disconnected_components_workload(
            components=2, rows_per_component=2, values=3
        )
        args = (workload.cinstance, workload.master, workload.constraints)
        search = SATWorldSearch(*args, cegar=True, component_counting=True)
        assert search.count_worlds() == workload.world_count

    def test_connected_instance_is_one_component(self):
        workload = wide_pool_workload(rows=3, values_per_key=3)
        args = (workload.cinstance, workload.master, workload.constraints)
        search = SATWorldSearch(*args, component_counting=True)
        assert search.count_worlds() == SATWorldSearch(*args).count_worlds()
        assert search.stats.components == 1


# ---------------------------------------------------------------------------
# knobs flow end-to-end through EngineConfig / Database
# ---------------------------------------------------------------------------
class TestEngineConfigOptions:
    def test_options_reach_decision_stats(self):
        workload = disconnected_components_workload(
            components=2, rows_per_component=2, values=3
        )
        db = Database(workload.cinstance, workload.master, workload.constraints)
        config = EngineConfig(
            "sat", options={"cegar": True, "component_counting": True}
        )
        decision = db.count(engine=config)
        assert decision.value == workload.world_count
        assert decision.stats.components == 2
        assert decision.stats.cegar_rounds is not None

    def test_decision_learning_option_round_trips(self):
        workload = inequality_chain_workload(3, close_cycle=True)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        for learning in ("first_uip", "decision"):
            config = EngineConfig("sat", options={"learning": learning})
            assert db.is_consistent(engine=config).holds is False

    def test_invalid_learning_option_raises(self):
        workload = inequality_chain_workload(2, close_cycle=False)
        with pytest.raises(ReductionError):
            SATWorldSearch(
                workload.cinstance,
                workload.master,
                workload.constraints,
                learning="bogus",
            ).has_world()
