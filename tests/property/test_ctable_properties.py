"""Property-based tests (hypothesis) on c-tables, valuations and Adom.

These properties are the semantic invariants the paper's Section 2.2 relies
on: valuations are identity on constants, dropping rows shrinks the induced
world, the active domain always covers the input constants, and possible-world
enumeration respects the containment constraints.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.constraints.containment import relation_containment_cc
from repro.ctables.adom import build_active_domain
from repro.ctables.cinstance import CInstance
from repro.ctables.conditions import TRUE, condition
from repro.ctables.ctable import CTable, CTableRow
from repro.ctables.possible_worlds import models
from repro.ctables.valuation import enumerate_valuations
from repro.queries.atoms import eq, neq
from repro.queries.terms import Variable
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema, database_schema

#: A small constant pool keeps the enumerations tractable while still hitting
#: equalities between generated constants.
CONSTANTS = st.integers(min_value=0, max_value=3)
VARIABLE_NAMES = st.sampled_from(["x", "y", "z"])

PAIR_SCHEMA = database_schema(RelationSchema("R", ["A", "B"]))
BOOL_SCHEMA = database_schema(
    RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
)


def terms_strategy():
    return st.one_of(CONSTANTS, VARIABLE_NAMES.map(Variable))


def rows_strategy(max_rows: int = 3):
    row = st.tuples(terms_strategy(), terms_strategy())
    return st.lists(row, min_size=0, max_size=max_rows)


@st.composite
def ctable_strategy(draw):
    rows = draw(rows_strategy())
    built = []
    for terms in rows:
        variables = [t for t in terms if isinstance(t, Variable)]
        if variables and draw(st.booleans()):
            pivot = draw(st.sampled_from(variables))
            bound = draw(CONSTANTS)
            comparison = eq(pivot, bound) if draw(st.booleans()) else neq(pivot, bound)
            built.append(CTableRow(terms, condition(comparison)))
        else:
            built.append(CTableRow(terms, TRUE))
    return CTable(PAIR_SCHEMA["R"], built)


@given(ctable_strategy())
@settings(max_examples=60, deadline=None)
def test_valuations_cover_all_variables_and_preserve_constants(table):
    T = CInstance(PAIR_SCHEMA, {"R": table})
    adom = build_active_domain(cinstance=T)
    for valuation in enumerate_valuations(T, adom):
        assert set(valuation) == T.variables()
        world = T.apply(valuation)
        # Every constant of the world either occurs in the c-table or is an
        # Adom value assigned to some variable.
        for value in world.constants():
            assert value in T.constants() or value in adom.constants


@given(ctable_strategy())
@settings(max_examples=60, deadline=None)
def test_worlds_never_exceed_row_count(table):
    T = CInstance(PAIR_SCHEMA, {"R": table})
    adom = build_active_domain(cinstance=T)
    for valuation in enumerate_valuations(T, adom):
        world = T.apply(valuation)
        # Conditions can only drop rows, and valuations can merge rows.
        assert len(world["R"]) <= len(table)


@given(ctable_strategy())
@settings(max_examples=60, deadline=None)
def test_removing_rows_shrinks_the_induced_world(table):
    if len(table) == 0:
        return
    T = CInstance(PAIR_SCHEMA, {"R": table})
    trimmed = T.without_row("R", 0)
    adom = build_active_domain(cinstance=T)
    for valuation in enumerate_valuations(T, adom):
        full_world = T.apply(valuation)
        small_world = trimmed.apply(valuation)
        assert small_world["R"].issubset(full_world["R"])


@given(ctable_strategy())
@settings(max_examples=60, deadline=None)
def test_active_domain_contains_input_constants_and_is_never_empty(table):
    T = CInstance(PAIR_SCHEMA, {"R": table})
    adom = build_active_domain(cinstance=T)
    assert T.constants() <= set(adom.constants)
    assert len(adom) > 0


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), max_size=3))
@settings(max_examples=40, deadline=None)
def test_models_satisfy_the_containment_constraints(rows):
    master = MasterData(
        database_schema(
            RelationSchema("Rm", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
        ),
        {"Rm": [(0, 0), (1, 1)]},
    )
    constraint = relation_containment_cc("R", BOOL_SCHEMA, "Rm")
    table = CTable(
        BOOL_SCHEMA["R"], [CTableRow(row) for row in rows] + [CTableRow((Variable("x"), 0))]
    )
    T = CInstance(BOOL_SCHEMA, {"R": table})
    for world in models(T, master, [constraint]):
        assert world["R"].rows <= master.relation("Rm").rows


@given(st.sets(st.sampled_from(["x", "y", "z", "w"]), min_size=0, max_size=4))
@settings(max_examples=40, deadline=None)
def test_fresh_values_are_distinct_and_new(variable_names):
    variables = {Variable(name) for name in variable_names}
    table = CTable(
        PAIR_SCHEMA["R"], [CTableRow((variable, 7)) for variable in sorted(variables)]
    )
    T = CInstance(PAIR_SCHEMA, {"R": table})
    adom = build_active_domain(cinstance=T, extra_constants={1, 2, 3})
    fresh = adom.fresh_values
    assert len(fresh) == len(set(fresh))
    assert not (set(fresh) & {1, 2, 3, 7})
    # One fresh value per variable, or a single generic one when there are none.
    assert len(fresh) == max(1, len(variables))
