"""Property-based tests (hypothesis) on query evaluation and completeness models.

The invariants exercised here are the ones the decision procedures lean on:

* monotonicity of CQ/UCQ/FP evaluation under instance extension,
* equivalence of a CQ with its UCQ / ∃FO⁺ wrappers,
* the model hierarchy "strongly complete ⟹ weakly complete and viably
  complete" (observation (a) after Example 2.3), and
* agreement of the strong and viable models on ground instances
  (observation (b)).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.completeness.strong import is_strongly_complete
from repro.completeness.viable import is_viably_complete
from repro.completeness.weak import is_weakly_complete
from repro.constraints.containment import relation_containment_cc
from repro.ctables.cinstance import CInstance
from repro.queries.atoms import atom
from repro.queries.classify import as_union_of_cqs
from repro.queries.cq import cq
from repro.queries.efo import cq_as_efo
from repro.queries.evaluation import evaluate
from repro.queries.fp import fixpoint_query, rule
from repro.queries.terms import var
from repro.queries.ucq import ucq
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.instance import GroundInstance, instance
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema, database_schema

x, y, z = var("x"), var("y"), var("z")

EDGE_SCHEMA = database_schema(
    RelationSchema("E", [("src", BOOLEAN_DOMAIN), ("dst", BOOLEAN_DOMAIN)])
)
EDGE_MASTER = MasterData(
    database_schema(
        RelationSchema("Em", [("src", BOOLEAN_DOMAIN), ("dst", BOOLEAN_DOMAIN)])
    ),
    {"Em": [(0, 0), (0, 1), (1, 0), (1, 1)]},
)

edges_strategy = st.sets(
    st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=0, max_size=4
)

POINT_QUERY = cq("P", [y], atoms=[atom("E", 0, y)])
PAIR_QUERY = cq("Q", [x, y], atoms=[atom("E", x, y)])
UNION_QUERY = ucq("U", POINT_QUERY, cq("P2", [y], atoms=[atom("E", 1, y)]))
REACH_QUERY = fixpoint_query(
    "Reach",
    output="T",
    rules=[
        rule(atom("T", x, y), atom("E", x, y)),
        rule(atom("T", x, z), atom("T", x, y), atom("E", y, z)),
    ],
)
ALL_QUERIES = [POINT_QUERY, PAIR_QUERY, UNION_QUERY, REACH_QUERY]


def edge_instance(edges) -> GroundInstance:
    return instance(EDGE_SCHEMA, E=sorted(edges))


@given(edges_strategy, edges_strategy)
@settings(max_examples=80, deadline=None)
def test_monotone_languages_are_monotone(edges_a, edges_b):
    smaller = edge_instance(edges_a)
    larger = edge_instance(edges_a | edges_b)
    for query in ALL_QUERIES:
        assert evaluate(query, smaller) <= evaluate(query, larger)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_cq_agrees_with_its_ucq_and_efo_views(edges):
    db = edge_instance(edges)
    assert evaluate(PAIR_QUERY, db) == evaluate(as_union_of_cqs(PAIR_QUERY), db)
    assert evaluate(PAIR_QUERY, db) == evaluate(cq_as_efo(PAIR_QUERY), db)


@given(edges_strategy)
@settings(max_examples=80, deadline=None)
def test_fixpoint_contains_its_edb_seed(edges):
    db = edge_instance(edges)
    closure = evaluate(REACH_QUERY, db)
    assert db["E"].rows <= closure
    # The transitive closure is itself transitively closed.
    pairs = set(closure)
    for (a, b) in pairs:
        for (c, d) in pairs:
            if b == c:
                assert (a, d) in pairs


@given(edges_strategy)
@settings(max_examples=25, deadline=None)
def test_strong_implies_weak_and_viable(edges):
    constraint = relation_containment_cc("E", EDGE_SCHEMA, "Em")
    db = edge_instance(edges)
    T = CInstance.from_ground_instance(db)
    if is_strongly_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint]):
        assert is_weakly_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint])
        assert is_viably_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint])


@given(edges_strategy)
@settings(max_examples=25, deadline=None)
def test_strong_and_viable_coincide_on_ground_instances(edges):
    constraint = relation_containment_cc("E", EDGE_SCHEMA, "Em")
    T = CInstance.from_ground_instance(edge_instance(edges))
    assert is_strongly_complete(T, POINT_QUERY, EDGE_MASTER, [constraint]) == \
        is_viably_complete(T, POINT_QUERY, EDGE_MASTER, [constraint])


@given(edges_strategy)
@settings(max_examples=25, deadline=None)
def test_saturated_instance_is_complete_in_every_model(edges):
    constraint = relation_containment_cc("E", EDGE_SCHEMA, "Em")
    saturated = edge_instance({(0, 0), (0, 1), (1, 0), (1, 1)} | set(edges))
    T = CInstance.from_ground_instance(saturated)
    assert is_strongly_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint])
    assert is_weakly_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint])
    assert is_viably_complete(T, PAIR_QUERY, EDGE_MASTER, [constraint])
