"""Property-based suite for the incremental-update layer of the facade.

Random update scripts drive :meth:`repro.api.Database.update` and
:meth:`~repro.api.Database.batch` through the situations the update layer
must get right:

* **drop-then-re-add** — a round trip restores the relation fingerprint, so
  cached decisions survive and batches commit without re-verification;
* **no-op updates** — dropping and re-adding a row in one call touches
  nothing and evicts nothing;
* **consistency flips** — streams that leave and re-enter consistency keep
  every engine's verdict in lockstep with a rebuilt-from-scratch oracle;
* **rolled-back batches** — a raising or inconsistency-rejected batch
  restores the c-instance, the Adom and the decision cache wholesale.

The cache-invalidation contract is pinned through the public
:attr:`repro.decision.DecisionStats.cache_hit` flag: touching an entry's
dependency relations must flip it back to ``False``; updates confined to
relations outside the dependency set (and leaving the active domain alone)
must keep it ``True``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Database
from repro.constraints.containment import cc, projection
from repro.ctables.cinstance import CInstance
from repro.ctables.ctable import CTable, CTableRow
from repro.exceptions import InconsistentUpdateError, UpdateError
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema
from repro.search.registry import EngineConfig
from repro.workloads.generator import registry_workload, update_stream_workload

ALL_ENGINES = ("naive", "propagating", "sat", "parallel")


def make_database(seed: int = 0, **kwargs) -> Database:
    workload = registry_workload(seed=seed, **kwargs)
    return Database(
        workload.cinstance, workload.master, workload.constraints, engine="sat"
    )


def two_relation_database() -> Database:
    """``Record`` bounded by the registry plus an unconstrained ``Note``.

    ``Note`` shares the registry's constants, so updates to it can leave the
    Prop. 3.3 active domain untouched — the setup the *non-touching* cache
    assertions need.
    """
    db_schema = database_schema(
        schema("Record", "key", "value"), schema("Note", "key", "text")
    )
    master = MasterData(
        database_schema(schema("Registry", "key", "value")),
        {"Registry": [("k0", "v0"), ("k1", "v1")]},
    )
    k, v = var("k"), var("v")
    bound = cc(
        cq("all_records", [k, v], atoms=[atom("Record", k, v)]),
        projection("Registry", "key", "value"),
        name="record⊆registry",
    )
    cinst = CInstance(
        db_schema,
        {
            "Record": CTable(db_schema["Record"], [CTableRow(("k0", var("m0")))]),
            "Note": CTable(db_schema["Note"], [CTableRow(("k0", "v0"))]),
        },
    )
    return Database(cinst, master, [bound], engine="sat")


# ---------------------------------------------------------------------------
# no-op updates and drop-then-re-add
# ---------------------------------------------------------------------------
def test_drop_then_readd_in_one_call_is_noop():
    db = make_database()
    row = next(
        r.terms for r in db.cinstance.table("Record").rows if not r.variables()
    )
    before = db.is_consistent(witness=False)
    result = db.update(add_rows={"Record": [row]}, drop_rows={"Record": [row]})
    assert result.is_noop
    assert result.touched == frozenset()
    assert not result.adom_changed
    assert result.invalidated == 0
    after = db.is_consistent(witness=False)
    assert after.stats.cache_hit is True
    assert bool(after) == bool(before)


def test_drop_then_readd_across_updates_restores_fingerprint():
    db = make_database()
    row = next(
        r.terms for r in db.cinstance.table("Record").rows if not r.variables()
    )
    fingerprints = db.cinstance.relation_fingerprints()
    dropped = db.update(drop_rows={"Record": [row]})
    assert dropped.touched == frozenset({"Record"})
    assert db.cinstance.relation_fingerprints() != fingerprints
    db.update(add_rows={"Record": [row]})
    assert db.cinstance.relation_fingerprints() == fingerprints


def test_noop_batch_commits_without_verification():
    db = make_database()
    row = next(
        r.terms for r in db.cinstance.table("Record").rows if not r.variables()
    )
    db.is_consistent(witness=False)
    with db.batch() as batch:
        batch.update(drop_rows={"Record": [row]})
        batch.update(add_rows={"Record": [row]})
    # The net no-op left the fingerprints alone: the cached verdict survives.
    assert db.is_consistent(witness=False).stats.cache_hit is True


# ---------------------------------------------------------------------------
# cache-invalidation contract (DecisionStats.cache_hit)
# ---------------------------------------------------------------------------
def test_cache_hit_false_after_touching_update():
    db = make_database()
    first = db.is_consistent(witness=False)
    assert first.stats.cache_hit is False
    assert db.is_consistent(witness=False).stats.cache_hit is True
    registry_rows = sorted(db.master.relation("Registry").rows)
    present = {
        r.terms for r in db.cinstance.table("Record").rows if not r.variables()
    }
    new_row = next(row for row in registry_rows if row not in present)
    result = db.update(add_rows={"Record": [new_row]})
    assert "Record" in result.touched
    assert result.invalidated >= 1
    recomputed = db.is_consistent(witness=False)
    assert recomputed.stats.cache_hit is False
    assert db.is_consistent(witness=False).stats.cache_hit is True


def test_cache_hit_true_after_non_touching_update():
    db = two_relation_database()
    db.is_consistent(witness=False)
    # "Note" is outside the constraints' dependency set and the new row uses
    # only constants already in Adom — the cached verdict must survive.
    result = db.update(add_rows={"Note": [("k1", "v1")]})
    assert result.touched == frozenset({"Note"})
    assert not result.adom_changed
    assert db.is_consistent(witness=False).stats.cache_hit is True


def test_adom_change_invalidates_even_untouched_dependencies():
    db = two_relation_database()
    db.is_consistent(witness=False)
    # A genuinely new constant enters S, so the validation context changes
    # and the cached verdict may not be reused even though only "Note"
    # (outside the dependency set) was touched.
    result = db.update(add_rows={"Note": [("k0", "brand-new")]})
    assert result.touched == frozenset({"Note"})
    assert result.adom_changed
    assert db.is_consistent(witness=False).stats.cache_hit is False


def test_rcqp_cache_survives_every_update():
    workload = registry_workload(master_size=3, db_rows=2, variable_count=1)
    db = Database(
        workload.cinstance, workload.master, workload.constraints, engine="sat"
    )
    first = db.rcqp(workload.point_query)
    assert first.stats.cache_hit is False
    row = next(
        r.terms for r in db.cinstance.table("Record").rows if not r.variables()
    )
    db.update(drop_rows={"Record": [row]})
    # RCQP quantifies over all databases: the c-instance contents play no
    # role, so its cached verdict has an empty dependency set and survives.
    again = db.rcqp(workload.point_query)
    assert again.stats.cache_hit is True
    assert bool(again) == bool(first)


# ---------------------------------------------------------------------------
# consistency flips
# ---------------------------------------------------------------------------
def test_consistency_flip_and_recovery_across_engines():
    db = make_database(master_size=3, db_rows=2, variable_count=1)
    assert bool(db.is_consistent(witness=False))
    off_registry = ("k0", "v-off")
    result = db.update(add_rows={"Record": [off_registry]})
    # The ground-fact baseline already certifies inconsistency.
    assert result.consistent is False
    for engine in ALL_ENGINES:
        assert not db.is_consistent(engine=EngineConfig(engine), witness=False)
        assert db.count(engine=EngineConfig(engine)).value == 0
    recovered = db.update(drop_rows={"Record": [off_registry]})
    assert recovered.consistent is None
    for engine in ALL_ENGINES:
        assert bool(db.is_consistent(engine=EngineConfig(engine), witness=False))


# ---------------------------------------------------------------------------
# rolled-back batches
# ---------------------------------------------------------------------------
def test_raising_batch_rolls_back_and_propagates():
    db = make_database()
    fingerprints = db.cinstance.relation_fingerprints()
    baseline = db.count().value
    with pytest.raises(RuntimeError, match="boom"):
        with db.batch() as batch:
            batch.update(add_rows={"Record": [("k0", "v-off")]})
            raise RuntimeError("boom")
    assert db.cinstance.relation_fingerprints() == fingerprints
    assert db.count().value == baseline


def test_inconsistent_batch_rolls_back():
    db = make_database(master_size=3, db_rows=2, variable_count=1)
    fingerprints = db.cinstance.relation_fingerprints()
    with pytest.raises(InconsistentUpdateError):
        with db.batch() as batch:
            batch.update(add_rows={"Record": [("k0", "v-off")]})
    assert db.cinstance.relation_fingerprints() == fingerprints
    assert bool(db.is_consistent(witness=False))


def test_batch_misuse_raises():
    db = make_database()
    batch = db.batch()
    with pytest.raises(UpdateError, match="outside the with block"):
        batch.update(add_rows={"Record": [("k0", "v0")]})
    with batch:
        with pytest.raises(UpdateError, match="not reentrant"):
            batch.__enter__()


def test_update_errors_are_atomic():
    db = make_database()
    fingerprints = db.cinstance.relation_fingerprints()
    with pytest.raises(UpdateError):
        db.update(add_rows={"NoSuchRelation": [("a", "b")]})
    with pytest.raises(UpdateError):
        db.update(drop_rows={"Record": [("not", "present")]})
    assert db.cinstance.relation_fingerprints() == fingerprints


# ---------------------------------------------------------------------------
# hypothesis: random scripts vs a rebuilt oracle
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(1, 5))
def test_random_scripts_match_rebuild_oracle(seed, steps):
    """Every step of a random script leaves the facade indistinguishable
    from a fresh one built over the same c-instance, on every engine."""
    workload = update_stream_workload(
        steps=steps,
        master_size=3,
        db_rows=2,
        variable_count=1,
        include_violations=True,
        seed=seed,
    )
    base = workload.base
    db = Database(base.cinstance, base.master, base.constraints, engine="sat")
    for step in workload.script:
        rows = {step.relation: [step.row]}
        if step.kind == "add":
            db.update(add_rows=rows)
        else:
            db.update(drop_rows=rows)
        oracle = Database(
            db.cinstance, base.master, base.constraints, engine="sat"
        )
        for engine in ALL_ENGINES:
            config = EngineConfig(engine)
            assert bool(db.is_consistent(engine=config, witness=False)) == bool(
                oracle.is_consistent(engine=config, witness=False)
            )
            assert db.count(engine=config).value == oracle.count(engine=config).value
        assert frozenset(db.worlds()) == frozenset(oracle.worlds())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(1, 4))
def test_random_batches_commit_or_roll_back_atomically(seed, steps):
    """A batch either commits a consistent state or restores the old one."""
    workload = update_stream_workload(
        steps=steps,
        master_size=3,
        db_rows=2,
        variable_count=1,
        include_violations=True,
        seed=seed,
    )
    base = workload.base
    db = Database(base.cinstance, base.master, base.constraints, engine="sat")
    before = db.cinstance.relation_fingerprints()
    try:
        with db.batch() as batch:
            for step in workload.script:
                rows = {step.relation: [step.row]}
                if step.kind == "add":
                    batch.update(add_rows=rows)
                else:
                    batch.update(drop_rows=rows)
    except InconsistentUpdateError:
        assert db.cinstance.relation_fingerprints() == before
    assert bool(db.is_consistent(witness=False)) == bool(
        Database(
            db.cinstance, base.master, base.constraints
        ).is_consistent(witness=False)
    )
