"""Public-API stability gate.

Snapshots ``repro.__all__``, the :class:`repro.api.Database` method
signatures, the :class:`~repro.decision.Decision` /
:class:`~repro.search.registry.EngineConfig` field lists and the built-in
engine set against ``public_api_snapshot.json``.  An accidental surface
change (a renamed method, a dropped export, a reordered required parameter)
fails this test; a *deliberate* change is made by regenerating the snapshot::

    python scripts/update_api_snapshot.py

and reviewing the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

from surface import build_surface

SNAPSHOT_PATH = Path(__file__).parent / "public_api_snapshot.json"


def test_public_surface_matches_snapshot():
    recorded = json.loads(SNAPSHOT_PATH.read_text())
    current = build_surface()
    assert current.keys() == recorded.keys(), (
        "snapshot sections changed; run scripts/update_api_snapshot.py"
    )
    for section in recorded:
        assert current[section] == recorded[section], (
            f"public API surface drifted in section {section!r}.\n"
            f"  recorded: {recorded[section]!r}\n"
            f"  current:  {current[section]!r}\n"
            "If the change is deliberate, regenerate with "
            "scripts/update_api_snapshot.py and commit the diff."
        )


def test_registered_builtin_engines_present():
    from repro.search.registry import engine_names

    for name in json.loads(SNAPSHOT_PATH.read_text())["builtin_engines"]:
        assert name in engine_names()
