"""Shared builder for the public-API surface snapshot.

Used by ``tests/api/test_public_surface.py`` (comparison) and
``scripts/update_api_snapshot.py`` (regeneration), so both sides always
describe the surface the same way.
"""

from __future__ import annotations

import dataclasses
import inspect


def build_surface() -> dict:
    """Describe the public surface a release promises to keep stable.

    Covers the top-level export list, every :class:`repro.api.Database`
    method signature, the :class:`~repro.search.registry.EngineConfig` and
    :class:`~repro.decision.Decision` field lists, and the built-in engine
    registrations — exactly the things an accidental refactor is most likely
    to break silently.
    """
    import repro
    from repro.api import Database
    from repro.decision import Decision, DecisionStats
    from repro.search.registry import EngineCapabilities, EngineConfig

    def signatures(cls) -> dict[str, str]:
        members = {}
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                members[name] = str(inspect.signature(member))
            elif isinstance(inspect.getattr_static(cls, name), property):
                members[name] = "<property>"
        return members

    def field_names(cls) -> list[str]:
        return [field.name for field in dataclasses.fields(cls)]

    return {
        "repro_all": sorted(repro.__all__),
        "database_methods": signatures(Database),
        "database_init": str(inspect.signature(Database.__init__)),
        "decision_fields": field_names(Decision),
        "decision_stats_fields": field_names(DecisionStats),
        "engine_config_fields": field_names(EngineConfig),
        "engine_capabilities_fields": field_names(EngineCapabilities),
        "builtin_engines": ["propagating", "sat", "parallel", "naive"],
    }
