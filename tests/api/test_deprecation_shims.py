"""The pre-2.0 surfaces still work — and warn.

The API redesign folded the report dataclasses (``WeakCompletenessReport``
field access, ``RCQPWitness.found`` / ``.instances_examined``) behind
deprecation shims on :class:`repro.decision.Decision`, and turned
``resolve_engine`` into a shim over the engine registry.  These tests pin
both halves of the contract: the old spelling keeps returning the right
value, and it emits a :class:`DeprecationWarning` pointing at the new one.
"""

from __future__ import annotations

import pytest

from repro.completeness.rcqp import rcqp_bounded_search
from repro.completeness.weak import weak_completeness_report
from repro.ctables.possible_worlds import resolve_engine
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData
from repro.relational.schema import RelationSchema, database_schema
from repro.workloads.patients import build_patient_scenario

x = var("x")


@pytest.fixture(scope="module")
def weak_decision():
    scenario = build_patient_scenario()
    return weak_completeness_report(
        scenario.figure1, scenario.q4, scenario.master, scenario.constraints
    )


@pytest.fixture(scope="module")
def rcqp_decision():
    bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
    master = MasterData(
        database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
        {"Rm": [(0,), (1,)]},
    )
    query = cq("Q", [x], atoms=[atom("R", x)], comparisons=[])
    return rcqp_bounded_search(query, bool_schema, master, [], max_size=1)


class TestWeakReportShims:
    def test_is_weakly_complete_shim_warns_and_matches_holds(self, weak_decision):
        with pytest.deprecated_call():
            legacy = weak_decision.is_weakly_complete
        assert legacy == weak_decision.holds

    def test_certain_over_models_shim(self, weak_decision):
        with pytest.deprecated_call():
            legacy = weak_decision.certain_over_models
        assert legacy == weak_decision.details.certain_over_models
        assert legacy == {("John",)}

    def test_certain_over_extensions_shim(self, weak_decision):
        with pytest.deprecated_call():
            legacy = weak_decision.certain_over_extensions
        assert legacy == weak_decision.details.certain_over_extensions

    def test_no_world_has_extensions_shim(self, weak_decision):
        with pytest.deprecated_call():
            legacy = weak_decision.no_world_has_extensions
        assert legacy == weak_decision.details.no_world_has_extensions


class TestRCQPWitnessShims:
    def test_found_shim_warns_and_matches_holds(self, rcqp_decision):
        with pytest.deprecated_call():
            legacy = rcqp_decision.found
        assert legacy == rcqp_decision.holds

    def test_instances_examined_shim(self, rcqp_decision):
        with pytest.deprecated_call():
            legacy = rcqp_decision.instances_examined
        assert legacy == rcqp_decision.stats.candidates_examined
        assert legacy == rcqp_decision.details.instances_examined

    def test_legacy_dataclass_still_in_details(self, rcqp_decision):
        # The dataclass itself is not deprecated — it is the details payload.
        assert rcqp_decision.details.found == rcqp_decision.holds
        assert rcqp_decision.details.witness == rcqp_decision.witness


class TestResolveEngineShim:
    def test_resolve_engine_warns_but_resolves(self):
        with pytest.deprecated_call():
            assert resolve_engine(None) == "propagating"
        with pytest.deprecated_call():
            assert resolve_engine("sat") == "sat"


class TestOldBooleanCallSites:
    """The signatures of the pre-2.0 boolean deciders still work unchanged."""

    def test_positional_call_and_truthiness(self):
        scenario = build_patient_scenario()
        # Old call shape: positional context, boolean use. No keywords, no
        # Decision-specific access — this is the pre-2.0 idiom verbatim.
        from repro.completeness.strong import is_strongly_complete

        verdict = is_strongly_complete(
            scenario.figure1, scenario.q1, scenario.master, scenario.constraints
        )
        if verdict:
            assert True
        assert verdict == True  # noqa: E712 - old comparison idiom still works
        assert not (not verdict)

    def test_engine_keyword_accepts_plain_strings(self):
        scenario = build_patient_scenario()
        from repro.completeness.consistency import is_consistent

        assert is_consistent(
            scenario.figure1, scenario.master, scenario.constraints, engine="naive"
        ) == is_consistent(
            scenario.figure1, scenario.master, scenario.constraints, engine="sat"
        )
