"""Facade-vs-functional parity for :class:`repro.api.Database`.

Every ``Database`` method must agree with the functional API it fronts, on
every registered engine, across the same fixture families the engine-parity
suite uses (registry workloads, the patients scenario, conditioned rows).
The suite also pins the :class:`repro.decision.Decision` invariants the
ISSUE 4 acceptance criteria name: concrete witness worlds from
``is_consistent()`` / ``complete()`` on at least one fixture per engine, and
a dummy engine registered *in the test* being selectable end-to-end through
:class:`~repro.search.registry.EngineConfig` without touching core modules.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.completeness.consistency import is_consistent
from repro.completeness.minp import is_minimal_complete
from repro.completeness.models import STRONG, VIABLE, WEAK, CompletenessModel
from repro.completeness.rcdp import is_relatively_complete
from repro.completeness.rcqp import rcqp
from repro.constraints.containment import satisfies_all
from repro.ctables.cinstance import cinstance
from repro.ctables.possible_worlds import (
    has_model,
    model_count,
    models,
    models_with_valuations,
)
from repro.decision import Decision
from repro.exceptions import SearchError
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.domains import BOOLEAN_DOMAIN
from repro.relational.master import MasterData, empty_master
from repro.relational.schema import RelationSchema, database_schema, schema
from repro.search.engine import WorldSearch
from repro.search.registry import (
    EngineCapabilities,
    EngineConfig,
    engine_names,
    register_engine,
    unregister_engine,
)
from repro.workloads.generator import registry_workload
from repro.workloads.patients import build_patient_scenario

#: Every engine the repository registers in core, reference first.
ALL_ENGINES = ("naive", "propagating", "sat", "parallel")

x, y = var("x"), var("y")


def _fixture_families():
    """(label, cinstance, master, constraints, query) tuples, harness-style."""
    families = []
    for master_size, db_rows, variable_count in [(2, 2, 1), (3, 3, 2)]:
        workload = registry_workload(
            master_size=master_size, db_rows=db_rows, variable_count=variable_count
        )
        families.append(
            (
                f"registry-{master_size}-{db_rows}-{variable_count}",
                workload.cinstance,
                workload.master,
                workload.constraints,
                workload.point_query,
            )
        )
    scenario = build_patient_scenario()
    families.append(
        ("patients", scenario.figure1, scenario.master, scenario.constraints, scenario.q1)
    )
    bool_schema = database_schema(
        RelationSchema("R", [("A", BOOLEAN_DOMAIN), ("B", BOOLEAN_DOMAIN)])
    )
    master = MasterData(
        database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
        {"Rm": [(0,), (1,)]},
    )
    conditioned = cinstance(bool_schema, R=[(x, y), (1, x)])
    families.append(
        (
            "conditioned-bool",
            conditioned,
            master,
            [],
            cq("Q", [x], atoms=[atom("R", x, x)]),
        )
    )
    return families


FAMILIES = _fixture_families()
FAMILY_IDS = [family[0] for family in FAMILIES]


@pytest.fixture(params=FAMILIES, ids=FAMILY_IDS)
def family(request):
    return request.param


class TestFacadeVsFunctionalParity:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_world_surfaces_match(self, family, engine):
        _label, cinst, master, constraints, _query = family
        db = Database(cinst, master, constraints)
        adom = db.adom()
        assert frozenset(db.worlds(engine=engine)) == frozenset(
            models(cinst, master, constraints, adom, engine=engine)
        )
        facade_pairs = {
            (frozenset(v.items()), w) for v, w in db.valuations(engine=engine)
        }
        functional_pairs = {
            (frozenset(v.items()), w)
            for v, w in models_with_valuations(
                cinst, master, constraints, adom, engine=engine
            )
        }
        assert facade_pairs == functional_pairs

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_count_matches_model_count(self, family, engine):
        _label, cinst, master, constraints, _query = family
        db = Database(cinst, master, constraints)
        decision = db.count(engine=engine)
        assert decision.value == model_count(cinst, master, constraints, engine=engine)
        assert decision.holds == (decision.value > 0)
        assert decision.engine_used == engine

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_is_consistent_matches_and_witnesses(self, family, engine):
        _label, cinst, master, constraints, _query = family
        db = Database(cinst, master, constraints)
        decision = db.is_consistent(engine=engine)
        functional = is_consistent(cinst, master, constraints, engine=engine)
        assert decision == functional
        assert decision.holds == has_model(cinst, master, constraints, engine=engine)
        assert decision.engine_used == engine
        if decision.holds:
            # The acceptance criterion: a concrete witness world, from every
            # engine, that really is a possible world.
            assert decision.witness is not None
            assert satisfies_all(decision.witness, master, constraints)
            assert decision.witness in frozenset(db.worlds(engine=engine))

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("model", list(CompletenessModel))
    def test_complete_matches_functional_rcdp(self, family, engine, model):
        _label, cinst, master, constraints, query = family
        db = Database(cinst, master, constraints)
        decision = db.complete(query, model, engine=engine)
        functional = is_relatively_complete(
            cinst, query, master, constraints, model, engine=engine
        )
        assert decision == functional
        assert decision.holds == functional.holds
        assert decision.model is model
        assert decision.engine_used == engine

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_viable_complete_attaches_witness_world(self, family, engine):
        _label, cinst, master, constraints, query = family
        db = Database(cinst, master, constraints)
        decision = db.complete(query, VIABLE, engine=engine)
        if decision.holds:
            assert satisfies_all(decision.witness, master, constraints)
            assert decision.witness in frozenset(db.worlds(engine=engine))

    def test_weak_complete_carries_report_details(self, family):
        _label, cinst, master, constraints, query = family
        db = Database(cinst, master, constraints)
        decision = db.complete(query, WEAK)
        assert decision.details is not None
        assert decision.details.is_weakly_complete == decision.holds

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_minp_matches_functional(self, engine):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        decision = db.minp(workload.point_query, STRONG, engine=engine)
        functional = is_minimal_complete(
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
            STRONG,
            engine=engine,
        )
        assert decision == functional

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_rcqp_matches_functional(self, engine):
        bool_schema = database_schema(RelationSchema("R", [("A", BOOLEAN_DOMAIN)]))
        master = MasterData(
            database_schema(RelationSchema("Rm", [("A", BOOLEAN_DOMAIN)])),
            {"Rm": [(0,), (1,)]},
        )
        query = cq("Q", [x], atoms=[atom("R", x)])
        db = Database(cinstance(bool_schema), master, [])
        decision = db.rcqp(query, STRONG, max_size=1, engine=engine)
        functional = rcqp(
            query, bool_schema, master, [], model="strong", max_size=1, engine=engine
        )
        assert decision == functional

    def test_certain_answers_match_report(self, family):
        _label, cinst, master, constraints, query = family
        db = Database(cinst, master, constraints)
        report = db.complete(query, WEAK).details
        assert db.certain_answers(query) == report.certain_over_models


class TestFacadeStateCaching:
    def test_adom_is_cached_per_query(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        assert db.adom() is db.adom()
        assert db.adom(workload.point_query) is db.adom(workload.point_query)
        assert db.adom() is not db.adom(workload.point_query)

    def test_checker_is_prebuilt_once(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        assert db.checker is db.checker
        assert list(db.checker.constraints) == list(workload.constraints)

    def test_default_engine_config_applies(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        db = Database(
            workload.cinstance,
            workload.master,
            workload.constraints,
            engine=EngineConfig(name="sat"),
        )
        assert db.is_consistent().engine_used == "sat"
        # Per-call override wins over the facade default.
        assert db.is_consistent(engine="naive").engine_used == "naive"

    def test_ground_instance_is_coerced(self):
        scenario = build_patient_scenario()
        world = next(
            iter(
                Database(
                    scenario.figure1, scenario.master, scenario.constraints
                ).worlds()
            )
        )
        db = Database(world, scenario.master, scenario.constraints)
        assert db.is_consistent().holds

    def test_unknown_engine_raises(self):
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        with pytest.raises(SearchError):
            db.count(engine="no-such-engine")

    def test_forced_parallel_native_count_merges_shard_keys(self):
        # min_parallel_valuations=0 disables the serial fallback, so the
        # counts_natively fast path (per-shard world-key sets merged in the
        # parent) runs even on this small instance; the count must match the
        # reference engine exactly, duplicates across shards included.
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        forced = db.count(
            engine=EngineConfig(
                name="parallel",
                workers=2,
                options={"min_parallel_valuations": 0},
            )
        )
        assert forced.value == db.count(engine="naive").value

    def test_engine_config_options_reach_the_factory(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        reference = frozenset(db.worlds(engine="parallel"))
        reversed_order = frozenset(
            db.worlds(
                engine=EngineConfig(
                    name="parallel",
                    workers=2,
                    options={"shard_order": "reversed", "min_parallel_valuations": 0},
                )
            )
        )
        assert reversed_order == reference


class TestAmbientStateHygiene:
    """Suspended facade generators must not leak shared state (regression)."""

    def test_suspended_worlds_generator_does_not_leak_checker(self):
        # A Database generator left suspended mid-iteration must not leave
        # its ConstraintChecker ambient: a functional call with *different*
        # constraints made while the generator is alive has to see its own
        # constraint set, not the facade's.
        scenario = build_patient_scenario()
        constrained = Database(scenario.figure1, scenario.master, scenario.constraints)
        suspended = constrained.worlds()
        next(suspended)  # suspend inside the enumeration
        unconstrained = frozenset(
            models(scenario.figure1, scenario.master, [])
        )
        reference = frozenset(
            models(scenario.figure1, scenario.master, [], engine="naive")
        )
        assert unconstrained == reference
        suspended.close()

    def test_interleaved_generator_close_keeps_checkers_isolated(self):
        scenario = build_patient_scenario()
        db1 = Database(scenario.figure1, scenario.master, scenario.constraints)
        db2 = Database(scenario.figure1, scenario.master, [])
        g1 = db1.worlds()
        next(g1)
        g2 = db2.worlds()
        next(g2)
        g1.close()  # out-of-LIFO-order teardown must not corrupt anything
        remaining = {next(iter(db2.worlds()))} | set(g2)
        assert remaining == frozenset(db2.worlds(engine="naive")) | remaining
        g2.close()
        # After every generator is gone, fresh calls still agree per engine.
        assert frozenset(db1.worlds()) == frozenset(db1.worlds(engine="naive"))


class TestDummyEngineRegistration:
    """A third-party engine registered in a test, not in core (ISSUE 4)."""

    @pytest.fixture
    def dummy_engine(self):
        def factory(
            cinst, master, constraints, adom, *, workers, checker, break_symmetry,
            **options,
        ):
            # Delegate to the propagating search: a drop-in replacement
            # demonstrating that no core module needs to know this engine.
            return WorldSearch(
                cinst, master, constraints, adom,
                break_symmetry=break_symmetry, checker=checker,
            )

        register_engine(
            "dummy-test-engine",
            factory,
            EngineCapabilities(symmetry_breaking=True),
        )
        try:
            yield "dummy-test-engine"
        finally:
            unregister_engine("dummy-test-engine")

    def test_registered_dummy_is_listed(self, dummy_engine):
        assert dummy_engine in engine_names()

    def test_dummy_engine_end_to_end_through_engineconfig(self, dummy_engine):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        config = EngineConfig(name=dummy_engine)
        decision = db.is_consistent(engine=config)
        assert decision.engine_used == dummy_engine
        assert decision == db.is_consistent(engine="propagating")
        assert frozenset(db.worlds(engine=config)) == frozenset(
            db.worlds(engine="propagating")
        )
        # Deciders reach it through the same registry, with no change to
        # possible_worlds.py.
        functional = is_relatively_complete(
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
            STRONG,
            engine=config,
        )
        assert functional.engine_used == dummy_engine
        assert functional == db.complete(workload.point_query, STRONG)

    def test_duplicate_registration_requires_replace(self, dummy_engine):
        with pytest.raises(SearchError):
            register_engine(dummy_engine, lambda *a, **k: None)

    def test_unregistered_engine_is_gone(self):
        assert "dummy-test-engine" not in engine_names()
        workload = registry_workload(master_size=2, db_rows=2, variable_count=1)
        with pytest.raises(SearchError):
            has_model(
                workload.cinstance,
                workload.master,
                workload.constraints,
                engine="dummy-test-engine",
            )


class TestDecisionObject:
    def test_bool_and_equality_compatibility(self):
        yes = Decision(holds=True, problem="consistency")
        no = Decision(holds=False, problem="consistency")
        assert yes and not no
        assert yes == True  # noqa: E712 - the boolean shim is the point
        assert no == False  # noqa: E712
        assert yes != no
        assert yes == Decision(holds=True, problem="rcdp")

    def test_repr_is_engine_stable(self):
        a = Decision(holds=True, problem="consistency", engine_used="sat")
        b = Decision(holds=True, problem="consistency", engine_used="naive")
        assert repr(a) == repr(b)
        assert str(a) == "True"

    def test_stats_are_populated(self):
        workload = registry_workload(master_size=3, db_rows=3, variable_count=2)
        db = Database(workload.cinstance, workload.master, workload.constraints)
        propagating = db.is_consistent(engine="propagating")
        assert propagating.stats.wall_time > 0
        assert propagating.stats.searches >= 1
        assert propagating.stats.nodes and propagating.stats.nodes > 0
        sat = db.count(engine="sat")
        assert sat.stats.clauses and sat.stats.clauses > 0

    def test_empty_master_consistency(self):
        free_schema = database_schema(schema("S", "A"))
        db = Database(
            cinstance(free_schema, S=[(x,)]),
            empty_master(database_schema(schema("M", "A"))),
            [],
        )
        for engine in ALL_ENGINES:
            decision = db.is_consistent(engine=engine)
            assert decision.holds and decision.witness is not None
