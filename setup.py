"""Setuptools shim.

The build metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in environments without the ``wheel`` package (no
PEP 517 build isolation available offline) via ``pip install -e .``.
"""

from setuptools import setup

setup()
