"""Setuptools shim.

The build metadata lives in ``pyproject.toml`` (name, version, ``src/``
package layout); ``pip install -e .`` picks it up through the standard PEP 517
path.  This file exists for offline environments without the ``wheel``
package or network access (where pip's build isolation cannot bootstrap a
backend): there, ``python setup.py develop`` installs the package with the
same metadata, which setuptools ≥ 61 also reads from ``pyproject.toml``.
"""

from setuptools import setup

setup()
