"""EXP-FIG1 — Figure 1 and Examples 1.1, 2.1–2.4: the patient MDM scenario.

The paper's only worked "dataset" is the UK-patients master-data scenario.
This benchmark runs every query of the scenario (Q1–Q4) through every
completeness model and records both the verdicts (they must match the paper's
examples — that is asserted, not just reported) and the cost, including how
the cost scales when the master registry grows.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.models import CompletenessModel
from repro.completeness.rcdp import is_relatively_complete
from repro.workloads.patients import build_patient_scenario

#: The verdicts the paper's examples state for the Figure 1 c-instance.
EXPECTED_VERDICTS = {
    ("Q1", "strong"): True,   # Example 2.3
    ("Q1", "weak"): True,
    ("Q1", "viable"): True,
    ("Q4", "strong"): False,  # Example 2.3
    ("Q4", "weak"): True,
    ("Q4", "viable"): True,
    ("Q3", "viable"): False,  # Example 2.2: master data says nothing about London
}


@pytest.mark.benchmark(group="patients: Figure 1 verdicts")
@pytest.mark.parametrize("model", [m.value for m in CompletenessModel])
@pytest.mark.parametrize("query_name", ["Q1", "Q2_present", "Q2_absent", "Q3", "Q4"])
def test_patient_scenario_verdicts(benchmark, patient_scenario, query_name, model):
    query = patient_scenario.queries()[query_name]
    verdict = run_once(
        benchmark,
        is_relatively_complete,
        patient_scenario.figure1,
        query,
        patient_scenario.master,
        patient_scenario.constraints,
        CompletenessModel(model),
    )
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["model"] = model
    benchmark.extra_info["complete"] = bool(verdict)
    expected = EXPECTED_VERDICTS.get((query_name, model))
    if expected is not None:
        assert verdict == expected


@pytest.mark.benchmark(group="patients: master registry growth")
@pytest.mark.parametrize("extra_master_rows", [0, 2, 4])
def test_patient_scenario_master_growth(benchmark, extra_master_rows):
    """Cost of the strong check for Q1 as the master registry grows."""
    scenario = build_patient_scenario(extra_master_rows=extra_master_rows)
    verdict = run_once(
        benchmark,
        is_relatively_complete,
        scenario.figure1,
        scenario.q1,
        scenario.master,
        scenario.constraints,
        CompletenessModel.STRONG,
    )
    benchmark.extra_info["extra_master_rows"] = extra_master_rows
    benchmark.extra_info["complete"] = verdict.holds
    assert verdict.holds is True
