"""EXP-T1-MINP-S — Table I, row "strong completeness", column MINP.

Paper claim: MINPˢ is Dᵖ₂-complete for ground instances but Πᵖ₃-complete for
c-instances (Theorem 4.8) — one of the places where missing values provably
raise the complexity.  The decider checks, for every world of ``Mod_Adom(T)``,
that the world is complete and that dropping any single tuple breaks
completeness (Lemma 4.7).

Measured series:

* ground instance vs. c-instance of the same size (the Dᵖ₂ / Πᵖ₃ gap);
* time vs. number of variables;
* time vs. number of database rows (each row adds a drop-one-tuple check).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.minp import (
    is_minimal_ground_complete,
    is_minimal_strongly_complete,
)
from repro.workloads.generator import registry_workload

VARIABLE_SWEEP = [0, 1, 2]
ROW_SWEEP = [1, 2, 3]


@pytest.mark.benchmark(group="minp-strong: ground vs c-instance")
@pytest.mark.parametrize("kind", ["ground", "cinstance"])
def test_minp_strong_ground_vs_cinstance(benchmark, kind):
    """The Dᵖ₂ (ground) vs Πᵖ₃ (c-instance) gap of Theorem 4.8."""
    workload = registry_workload(master_size=3, db_rows=2, variable_count=2)
    if kind == "ground":
        verdict = run_once(
            benchmark,
            is_minimal_ground_complete,
            workload.ground_db,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    else:
        verdict = run_once(
            benchmark,
            is_minimal_strongly_complete,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="minp-strong: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_minp_strong_vs_variable_count(benchmark, variable_count):
    workload = registry_workload(master_size=3, db_rows=2, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_minimal_strongly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="minp-strong: rows sweep")
@pytest.mark.parametrize("db_rows", ROW_SWEEP)
def test_minp_strong_vs_rows(benchmark, db_rows):
    """Each extra row adds one Lemma 4.7 drop-one-tuple completeness check."""
    workload = registry_workload(master_size=4, db_rows=db_rows, variable_count=1)
    verdict = run_once(
        benchmark,
        is_minimal_strongly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["db_rows"] = db_rows
    benchmark.extra_info["minimal"] = verdict
