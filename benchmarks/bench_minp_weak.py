"""EXP-T1-MINP-W — Table I, row "weak completeness", column MINP.

Paper claim: in the weak model the minimality problem splits by language —
coDP-complete for CQ (via the drastic simplification of Lemma 5.7) but
Πᵖ₄-complete for UCQ and ∃FO⁺ (Theorem 5.6).  Lemma 4.7 fails in the weak
model (Example 5.5), so the general decider must examine *every* subset of
rows, while the CQ decider only needs to look at the empty instance and at
singletons.

Measured series:

* CQ decider (Lemma 5.7) vs. general subset-enumerating decider on identical
  CQ inputs — the coDP / Πᵖ₄ gap;
* general decider vs. number of rows (the 2^n subset enumeration).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.minp import (
    is_minimal_weakly_complete,
    is_minimal_weakly_complete_cq,
)
from repro.queries.ucq import ucq
from repro.workloads.generator import registry_workload

ROW_SWEEP = [1, 2, 3]


@pytest.mark.benchmark(group="minp-weak: CQ shortcut vs general decider")
@pytest.mark.parametrize("decider", ["lemma57_cq", "general_subsets"])
def test_minp_weak_cq_vs_general(benchmark, decider):
    """Lemma 5.7 (coDP) vs the subset enumeration (Πᵖ₄ upper bound) on one input."""
    workload = registry_workload(master_size=3, db_rows=3, variable_count=0)
    if decider == "lemma57_cq":
        verdict = run_once(
            benchmark,
            is_minimal_weakly_complete_cq,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    else:
        verdict = run_once(
            benchmark,
            is_minimal_weakly_complete,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    benchmark.extra_info["decider"] = decider
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="minp-weak: language gap (CQ vs UCQ)")
@pytest.mark.parametrize("language", ["CQ", "UCQ"])
def test_minp_weak_language_gap(benchmark, language):
    """CQ goes through Lemma 5.7; UCQ must use the general decider."""
    workload = registry_workload(master_size=3, db_rows=2, variable_count=0)
    if language == "CQ":
        verdict = run_once(
            benchmark,
            is_minimal_weakly_complete_cq,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    else:
        union_query = ucq("U", workload.point_query)
        verdict = run_once(
            benchmark,
            is_minimal_weakly_complete,
            workload.cinstance,
            union_query,
            workload.master,
            workload.constraints,
        )
    benchmark.extra_info["language"] = language
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="minp-weak: rows sweep (subset enumeration)")
@pytest.mark.parametrize("db_rows", ROW_SWEEP)
def test_minp_weak_general_vs_rows(benchmark, db_rows):
    """The general decider's 2^rows sub-instance enumeration."""
    workload = registry_workload(master_size=4, db_rows=db_rows, variable_count=0)
    verdict = run_once(
        benchmark,
        is_minimal_weakly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["db_rows"] = db_rows
    benchmark.extra_info["minimal"] = verdict
