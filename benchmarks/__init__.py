"""Benchmark harness regenerating the paper's Table I / Section 7 shapes."""
