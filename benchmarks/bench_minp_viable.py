"""EXP-T1-MINP-V — Table I, row "viable completeness", column MINP.

Paper claim: MINPᵛ is Σᵖ₃-complete for c-instances and Dᵖ₂-complete for
ground instances (Corollary 6.3) — like RCDPᵛ, the viable model pays for
missing values.  The decider searches ``Mod_Adom(T)`` for a world that is a
*minimal* complete ground instance and can exit early on success.

Measured series:

* ground instance vs. c-instance (the Dᵖ₂ / Σᵖ₃ gap);
* time vs. number of variables.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.minp import (
    is_minimal_ground_complete,
    is_minimal_viably_complete,
)
from repro.workloads.generator import registry_workload

VARIABLE_SWEEP = [0, 1, 2]


@pytest.mark.benchmark(group="minp-viable: ground vs c-instance")
@pytest.mark.parametrize("kind", ["ground", "cinstance"])
def test_minp_viable_ground_vs_cinstance(benchmark, kind):
    workload = registry_workload(master_size=3, db_rows=2, variable_count=2)
    if kind == "ground":
        verdict = run_once(
            benchmark,
            is_minimal_ground_complete,
            workload.ground_db,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    else:
        verdict = run_once(
            benchmark,
            is_minimal_viably_complete,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="minp-viable: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_minp_viable_vs_variable_count(benchmark, variable_count):
    workload = registry_workload(master_size=3, db_rows=2, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_minimal_viably_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["minimal"] = verdict
