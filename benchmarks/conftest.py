"""Shared fixtures and helpers for the benchmark harness.

The paper's "evaluation" is a complexity classification (Table I) plus the
tractable data-complexity cases of Section 7, so the benchmarks measure how
the running time of each decision procedure *scales* with the input
parameters that drive the theoretical bounds:

* the number of variables (missing values) in the c-instance — the exponent
  of the ``Mod_Adom`` enumeration,
* the size of the master data / active domain — the base of that exponent,
* the number of tuples in the database — the parameter of the Section 7
  PTIME results, and
* the query language / completeness model — the rows and columns of Table I.

Each benchmark prints (via ``--benchmark-only`` group reports) one series per
experiment of the per-experiment index in ``DESIGN.md``; ``EXPERIMENTS.md``
records how the measured shape relates to the paper's claims.

Because most deciders are intentionally exponential, the benchmarks run each
cell exactly once (``benchmark.pedantic(rounds=1)``) — the interesting signal
is the growth across cells, not per-cell variance.
"""

from __future__ import annotations

import pytest

from repro.workloads.generator import registry_workload
from repro.workloads.patients import build_patient_scenario


@pytest.fixture(scope="session")
def patient_scenario():
    """The paper's running MDM scenario (Example 1.1 / Figure 1, trimmed)."""
    return build_patient_scenario()


@pytest.fixture(scope="session")
def small_registry():
    """A small registry workload shared by benchmarks that only need one input."""
    return registry_workload(master_size=3, db_rows=2, variable_count=1)
