"""EXP-T1-RCQP — Table I, column RCQP.

Paper claims:

* **weak model** — O(1) for CQ, UCQ, ∃FO⁺ and FP (Theorem 5.4): a weakly
  complete database always exists.  The series shows constant time regardless
  of the input size, plus the cost of actually *constructing* the witness
  instance from the appendix proof.
* **strong / viable models** — NEXPTIME-complete in general (Theorem 4.5 /
  Corollary 6.2); PTIME when every CC is IND-shaped (Corollary 7.2, the
  boundedness test of Fan & Geerts).  The series contrasts the PTIME
  IND-shaped test with the exponential bounded witness search for general
  CCs.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.rcqp import (
    construct_weakly_complete_witness,
    rcqp_bounded_search,
    strong_rcqp_with_ind_ccs,
    weak_rcqp,
)
from repro.queries.atoms import atom, eq
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.workloads.generator import registry_workload

MASTER_SWEEP = [2, 4, 8, 16]


@pytest.mark.benchmark(group="rcqp-weak: O(1) decision")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_weak_rcqp_constant_time(benchmark, master_size):
    """Theorem 5.4: the weak-model answer does not depend on the input size."""
    workload = registry_workload(master_size=master_size, db_rows=2, variable_count=1)
    verdict = run_once(benchmark, weak_rcqp, workload.point_query)
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["exists"] = verdict


@pytest.mark.benchmark(group="rcqp-weak: witness construction")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_weak_rcqp_witness_construction(benchmark, master_size):
    """Cost of building the appendix-proof witness I₀ (grows with Adom)."""
    workload = registry_workload(master_size=master_size, db_rows=2, variable_count=0)
    witness = run_once(
        benchmark,
        construct_weakly_complete_witness,
        workload.schema,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["witness_size"] = witness.size


@pytest.mark.benchmark(group="rcqp-strong: IND-shaped CCs (PTIME)")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_strong_rcqp_ind_ccs(benchmark, master_size):
    """Corollary 7.2: the boundedness test stays polynomial in the master size."""
    workload = registry_workload(
        master_size=master_size, db_rows=2, variable_count=0, with_fd=False
    )
    verdict = run_once(
        benchmark,
        strong_rcqp_with_ind_ccs,
        workload.point_query,
        workload.schema,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["exists"] = verdict


@pytest.mark.benchmark(group="rcqp-strong: bounded witness search (general CCs)")
@pytest.mark.parametrize("max_size", [1, 2])
def test_strong_rcqp_bounded_search(benchmark, max_size):
    """The NEXPTIME cell: witness search over Adom instances of bounded size."""
    workload = registry_workload(master_size=3, db_rows=2, variable_count=0)
    k, v = var("k"), var("v")
    selective = cq(
        "Selective",
        [v],
        atoms=[atom("Record", k, v)],
        comparisons=[eq(k, "k0")],
    )
    result = run_once(
        benchmark,
        rcqp_bounded_search,
        selective,
        workload.schema,
        workload.master,
        workload.constraints,
        max_size,
    )
    benchmark.extra_info["max_size"] = max_size
    benchmark.extra_info["found"] = result.holds
    benchmark.extra_info["instances_examined"] = result.stats.candidates_examined
