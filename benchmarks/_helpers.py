"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark timer.

    The exponential deciders are far too slow to be repeated for statistical
    stability; a single timed run per sweep point is what the complexity-shape
    experiments need (the signal is the growth across sweep points).
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
