"""EXP-P33 — Proposition 3.3: the consistency and extensibility problems.

Paper claim: deciding whether ``Mod(T, D_m, V)`` is non-empty (consistency)
and whether ``Ext(I, D_m, V)`` is non-empty (extensibility) are both
Σᵖ₂-complete, already for c-instances without local conditions and fixed
master data.  The upper-bound algorithms guess an Adom valuation
(respectively a single Adom tuple) and check the CCs.

Measured series:

* consistency time vs. number of variables in the c-instance;
* extensibility time vs. master-data size (the candidate-tuple space);
* consistency of the Proposition 3.3 reduction instances built from
  ``∀X ∃Y ψ`` formulas of growing size — the hardness source made executable.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.consistency import is_consistent, is_extensible
from repro.reductions.consistency_reduction import build_consistency_reduction
from repro.reductions.sat import random_forall_exists_instance
from repro.workloads.generator import registry_workload

VARIABLE_SWEEP = [0, 1, 2, 3]
MASTER_SWEEP = [2, 4, 8]
QBF_SWEEP = [(1, 1, 2), (2, 1, 3), (2, 2, 4)]


@pytest.mark.benchmark(group="consistency: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_consistency_vs_variable_count(benchmark, variable_count):
    workload = registry_workload(master_size=3, db_rows=3, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_consistent,
        workload.cinstance,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["consistent"] = bool(verdict)


@pytest.mark.benchmark(group="extensibility: master-size sweep")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_extensibility_vs_master_size(benchmark, master_size):
    workload = registry_workload(master_size=master_size, db_rows=1, variable_count=0)
    verdict = run_once(
        benchmark,
        is_extensible,
        workload.ground_db,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["extensible"] = verdict


@pytest.mark.benchmark(group="consistency: Proposition 3.3 reduction instances")
@pytest.mark.parametrize("dimensions", QBF_SWEEP, ids=lambda d: f"x{d[0]}_y{d[1]}_c{d[2]}")
def test_consistency_of_reduction_instances(benchmark, dimensions):
    """Consistency of instances produced by the ∀∃3SAT reduction (hardness source)."""
    universal, existential, clauses = dimensions
    formula = random_forall_exists_instance(universal, existential, clauses, seed=7)
    reduction = build_consistency_reduction(formula)
    verdict = run_once(
        benchmark,
        is_consistent,
        reduction.cinstance,
        reduction.master,
        reduction.constraints,
    )
    benchmark.extra_info["qbf"] = repr(formula)
    # Proposition 3.3: the c-instance is consistent iff the formula is false.
    benchmark.extra_info["consistent"] = bool(verdict)
    benchmark.extra_info["formula_true"] = reduction.formula_is_true()
    assert verdict == (not reduction.formula_is_true())
