"""EXP-S7-TRACTABLE — Section 7: tractable data-complexity regimes.

Paper claims (Corollaries 7.1–7.3): with the query and the CCs *fixed*,

* RCDP (all three models) is in PTIME for c-instances with a constant number
  of variables,
* RCQP is in PTIME for IND-shaped CCs (strong/viable) and O(1) (weak), and
* MINP is in PTIME under the same side conditions.

The decisive contrast with the Table I benchmarks is *what grows*: here the
database and the master data grow while the number of variables stays
constant, and the measured time grows polynomially; in the Table I sweeps the
number of variables grows and the time grows exponentially.

Measured series (fixed query, fixed CCs, 2 variables throughout):

* RCDP^s / RCDP^w / RCDP^v vs. master-data size;
* MINP^s vs. database rows;
* RCQP^s (IND CCs) vs. master-data size.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.models import CompletenessModel
from repro.completeness.tractable import (
    minp_data_complexity,
    rcdp_data_complexity,
    rcqp_data_complexity,
)
from repro.workloads.generator import registry_workload

MASTER_SWEEP = [2, 4, 8, 12]
ROW_SWEEP = [1, 2, 3, 4]
FIXED_VARIABLES = 2


@pytest.mark.benchmark(group="tractable: RCDP data complexity (fixed Q, V, 2 variables)")
@pytest.mark.parametrize("model", [m.value for m in CompletenessModel])
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_rcdp_data_complexity_scaling(benchmark, master_size, model):
    workload = registry_workload(
        master_size=master_size, db_rows=2, variable_count=FIXED_VARIABLES
    )
    verdict = run_once(
        benchmark,
        rcdp_data_complexity,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
        CompletenessModel(model),
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["model"] = model
    benchmark.extra_info["complete"] = bool(verdict)


@pytest.mark.benchmark(group="tractable: MINP data complexity (fixed Q, V)")
@pytest.mark.parametrize("db_rows", ROW_SWEEP)
def test_minp_data_complexity_scaling(benchmark, db_rows):
    workload = registry_workload(master_size=4, db_rows=db_rows, variable_count=1)
    verdict = run_once(
        benchmark,
        minp_data_complexity,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
        CompletenessModel.STRONG,
    )
    benchmark.extra_info["db_rows"] = db_rows
    benchmark.extra_info["minimal"] = verdict


@pytest.mark.benchmark(group="tractable: RCQP data complexity (IND CCs)")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_rcqp_data_complexity_scaling(benchmark, master_size):
    workload = registry_workload(
        master_size=master_size, db_rows=2, variable_count=0, with_fd=False
    )
    verdict = run_once(
        benchmark,
        rcqp_data_complexity,
        workload.point_query,
        workload.schema,
        workload.master,
        workload.constraints,
        CompletenessModel.STRONG,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["exists"] = verdict
