"""EXP-T1-RCDP-S — Table I, row "strong completeness", column RCDP.

Paper claim: RCDPˢ is Πᵖ₂-complete for CQ, UCQ and ∃FO⁺ (Theorem 4.1), for
c-instances and ground instances alike, and the presence of missing values
does not change the bound.  Operationally the decider enumerates
``Mod_Adom(T)`` (exponential in the number of variables of ``T``) and, per
world, the Adom valuations of the query tableau (exponential in the number of
query variables).

Measured series:

* time vs. number of variables in the c-instance (fixed master) — the
  exponential driven by missing values;
* time vs. master-data size (fixed variables) — the polynomial-base growth of
  the active domain;
* ground instance vs. c-instance of the same size — the "missing values cost
  an extra exponential" gap the paper calls out in conclusion (b).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.ground import is_ground_complete
from repro.completeness.strong import is_strongly_complete
from repro.workloads.generator import registry_workload

VARIABLE_SWEEP = [0, 1, 2, 3]
MASTER_SWEEP = [2, 4, 8]


@pytest.mark.benchmark(group="rcdp-strong: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_rcdp_strong_vs_variable_count(benchmark, variable_count):
    """Exponential growth in the number of missing values (Theorem 4.1)."""
    workload = registry_workload(master_size=3, db_rows=3, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_strongly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["strongly_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-strong: master-size sweep")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_rcdp_strong_vs_master_size(benchmark, master_size):
    """Polynomial growth in the master-data (active-domain) size."""
    workload = registry_workload(master_size=master_size, db_rows=2, variable_count=1)
    verdict = run_once(
        benchmark,
        is_strongly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["strongly_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-strong: ground vs c-instance")
@pytest.mark.parametrize("kind", ["ground", "cinstance"])
def test_rcdp_strong_ground_vs_cinstance(benchmark, kind):
    """The same database with and without missing values (conclusion (b))."""
    workload = registry_workload(master_size=4, db_rows=3, variable_count=2)
    if kind == "ground":
        verdict = run_once(
            benchmark,
            is_ground_complete,
            workload.ground_db,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    else:
        verdict = run_once(
            benchmark,
            is_strongly_complete,
            workload.cinstance,
            workload.point_query,
            workload.master,
            workload.constraints,
        )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["complete"] = bool(verdict)


@pytest.mark.benchmark(group="rcdp-strong: query language")
@pytest.mark.parametrize("language", ["CQ", "UCQ"])
def test_rcdp_strong_language(benchmark, language):
    """CQ vs UCQ on identical inputs (same Πᵖ₂ cell of Table I)."""
    workload = registry_workload(master_size=3, db_rows=2, variable_count=1)
    query = workload.point_query if language == "CQ" else workload.union_query
    verdict = run_once(
        benchmark,
        is_strongly_complete,
        workload.cinstance,
        query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["language"] = language
    benchmark.extra_info["strongly_complete"] = verdict
