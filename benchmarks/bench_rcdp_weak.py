"""EXP-T1-RCDP-W — Table I, row "weak completeness", column RCDP.

Paper claim: RCDPʷ is Πᵖ₃-complete for CQ, UCQ and ∃FO⁺ and
coNEXPTIME-complete for FP (Theorem 5.1); it is decidable for FP even though
the strong-model problem is not.  The decider intersects query answers over
``Mod_Adom(T)`` and over single-tuple Adom extensions of every world, so the
measured cost grows with the number of variables (worlds) and with the size
of the active domain (candidate extension tuples).

Measured series:

* time vs. number of variables (certain answer over worlds and extensions);
* time vs. master-data size;
* CQ vs UCQ vs FP on the same input — the FP column of Table I is decidable
  in the weak model, which is what the FP series demonstrates.
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.weak import is_weakly_complete
from repro.workloads.generator import chain_fp_query, registry_workload

VARIABLE_SWEEP = [0, 1, 2, 3]
MASTER_SWEEP = [2, 4, 8]


@pytest.mark.benchmark(group="rcdp-weak: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_rcdp_weak_vs_variable_count(benchmark, variable_count):
    """Exponential growth in the number of missing values (Theorem 5.1)."""
    workload = registry_workload(master_size=3, db_rows=3, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_weakly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["weakly_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-weak: master-size sweep")
@pytest.mark.parametrize("master_size", MASTER_SWEEP)
def test_rcdp_weak_vs_master_size(benchmark, master_size):
    """Growth in the active-domain size (candidate extension tuples)."""
    workload = registry_workload(master_size=master_size, db_rows=2, variable_count=1)
    verdict = run_once(
        benchmark,
        is_weakly_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["master_size"] = master_size
    benchmark.extra_info["weakly_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-weak: query language")
@pytest.mark.parametrize("language", ["CQ", "UCQ", "FP"])
def test_rcdp_weak_language(benchmark, language):
    """CQ / UCQ (Πᵖ₃ cell) vs FP (coNEXPTIME cell, still decidable)."""
    workload = registry_workload(master_size=3, db_rows=2, variable_count=1)
    queries = {
        "CQ": workload.point_query,
        "UCQ": workload.union_query,
        "FP": chain_fp_query(),
    }
    verdict = run_once(
        benchmark,
        is_weakly_complete,
        workload.cinstance,
        queries[language],
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["language"] = language
    benchmark.extra_info["weakly_complete"] = verdict
