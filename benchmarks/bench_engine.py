"""EXP-ENGINE — pruned constraint-propagating search vs naive enumeration.

Every decision procedure bottoms out in the enumeration of
``Mod_Adom(T, D_m, V)``.  This benchmark compares the two engines behind it
(``engine="naive"`` — the original cross-product scan — and
``engine="propagating"`` — the backtracking search of :mod:`repro.search`)
on the workloads the other benchmark files sweep, and extends the sweeps to
sizes the naive path cannot reach at all.

Each comparison first asserts *parity* (identical verdict / model count from
both engines) and then reports the timings.  The headline number is the
speedup on the largest case the naive path still finishes; the scale-up rows
run the propagating engine alone on inputs whose cross product is out of
reach (the naive cost column reports the number of valuations it would have
had to materialise).

Run directly (the file deliberately does not match pytest's ``test_*``
collection patterns)::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.completeness.consistency import is_consistent  # noqa: E402
from repro.completeness.strong import is_strongly_complete  # noqa: E402
from repro.ctables.possible_worlds import (  # noqa: E402
    default_active_domain,
    model_count,
)
from repro.ctables.valuation import count_valuations  # noqa: E402
from repro.reductions.consistency_reduction import (  # noqa: E402
    build_consistency_reduction,
)
from repro.reductions.sat import random_forall_exists_instance  # noqa: E402
from repro.workloads.generator import registry_workload  # noqa: E402

#: Acceptance floor for the headline comparison (ISSUE 1 criterion).
REQUIRED_SPEEDUP = 3.0


@dataclass
class Case:
    """One engine comparison: a label plus a verdict-returning callable."""

    group: str
    label: str
    run: Callable[[str], object]
    naive_feasible: bool = True
    headline: bool = False


@dataclass
class Outcome:
    case: Case
    verdict: object
    naive_seconds: float | None
    engine_seconds: float
    naive_cost_note: str = ""

    @property
    def speedup(self) -> float | None:
        if self.naive_seconds is None or self.engine_seconds <= 0:
            return None
        return self.naive_seconds / self.engine_seconds


def _timed(function: Callable[[], object]) -> tuple[object, float]:
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def _registry_cases(smoke: bool) -> list[Case]:
    consistency_sweep = [2, 3] if smoke else [2, 3, 4, 5]
    strong_sweep = [1, 2] if smoke else [1, 2, 3]
    cases: list[Case] = []
    for variable_count in consistency_sweep:
        workload = registry_workload(
            master_size=3, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="consistency (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == consistency_sweep[-1],
            )
        )
    for variable_count in strong_sweep:
        workload = registry_workload(
            master_size=3, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="rcdp-strong (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_strongly_complete(
                    w.cinstance, w.point_query, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == strong_sweep[-1],
            )
        )
    return cases


def _reduction_cases(smoke: bool) -> list[Case]:
    sweep = [(1, 1, 2), (2, 1, 3)] if smoke else [(1, 1, 2), (2, 1, 3), (2, 2, 4)]
    cases = []
    for dimensions in sweep:
        formula = random_forall_exists_instance(*dimensions, seed=7)
        reduction = build_consistency_reduction(formula)
        universal, existential, clauses = dimensions
        cases.append(
            Case(
                group="consistency (Prop. 3.3 reduction)",
                label=f"x{universal}_y{existential}_c{clauses}",
                run=lambda engine, r=reduction: is_consistent(
                    r.cinstance, r.master, r.constraints, engine=engine
                ),
            )
        )
    return cases


def _model_count_cases(smoke: bool) -> list[Case]:
    sweep = [2, 3] if smoke else [2, 3, 4]
    cases = []
    for variable_count in sweep:
        workload = registry_workload(
            master_size=4, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="model_count (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: model_count(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
            )
        )
    return cases


def _scale_up_cases(smoke: bool) -> list[Case]:
    """Sizes whose cross product the naive path cannot materialise."""
    sweep = [(6, 6, 6)] if smoke else [(6, 6, 6), (8, 8, 8), (10, 10, 10)]
    cases = []
    for master_size, db_rows, variable_count in sweep:
        workload = registry_workload(
            master_size=master_size, db_rows=db_rows, variable_count=variable_count
        )
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        valuations = count_valuations(workload.cinstance, adom)
        cases.append(
            Case(
                group="consistency scale-up (engine only)",
                label=(
                    f"master={master_size} rows={db_rows} vars={variable_count} "
                    f"(naive: {valuations:.2e} valuations)"
                ),
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                naive_feasible=False,
            )
        )
    return cases


def run_benchmark(smoke: bool) -> int:
    cases = (
        _registry_cases(smoke)
        + _reduction_cases(smoke)
        + _model_count_cases(smoke)
        + _scale_up_cases(smoke)
    )
    outcomes: list[Outcome] = []
    for case in cases:
        engine_verdict, engine_seconds = _timed(lambda: case.run("propagating"))
        if case.naive_feasible:
            naive_verdict, naive_seconds = _timed(lambda: case.run("naive"))
            if naive_verdict != engine_verdict:
                print(
                    f"PARITY FAILURE in {case.group} [{case.label}]: "
                    f"naive={naive_verdict!r} propagating={engine_verdict!r}"
                )
                return 1
        else:
            naive_seconds = None
        outcomes.append(Outcome(case, engine_verdict, naive_seconds, engine_seconds))

    width = max(len(f"{o.case.group} [{o.case.label}]") for o in outcomes)
    group = None
    for outcome in outcomes:
        if outcome.case.group != group:
            group = outcome.case.group
            print(f"\n== {group} ==")
        name = f"{outcome.case.group} [{outcome.case.label}]".ljust(width)
        naive = (
            f"{outcome.naive_seconds * 1e3:10.2f} ms"
            if outcome.naive_seconds is not None
            else "   (infeasible)"
        )
        speed = (
            f"{outcome.speedup:8.1f}x" if outcome.speedup is not None else "        -"
        )
        mark = "  <== headline" if outcome.case.headline else ""
        print(
            f"{name}  naive={naive}  propagating="
            f"{outcome.engine_seconds * 1e3:10.2f} ms  speedup={speed}"
            f"  verdict={outcome.verdict!r}{mark}"
        )

    headline = [o for o in outcomes if o.case.headline and o.speedup is not None]
    worst = min((o.speedup for o in headline), default=None)
    print()
    if worst is None:
        print("No headline comparison ran (smoke sweep too small?)")
        return 1
    print(
        f"Headline speedup (largest naive-feasible RCDP-strong/consistency "
        f"cases): {worst:.1f}x (required ≥ {REQUIRED_SPEEDUP:.0f}x)"
    )
    if not smoke and worst < REQUIRED_SPEEDUP:
        print("FAILED: pruned engine did not reach the required speedup")
        return 1
    print("All parity checks passed.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep for CI: parity checks plus a quick speedup report",
    )
    args = parser.parse_args()
    return run_benchmark(smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
