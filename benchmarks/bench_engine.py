"""EXP-ENGINE — four-way world-search comparison (naive / propagating / SAT / parallel).

Every decision procedure bottoms out in the enumeration of
``Mod_Adom(T, D_m, V)``.  This benchmark compares the four engines behind it
(``engine="naive"`` — the original cross-product scan, ``engine="propagating"``
— the backtracking search of :mod:`repro.search`, ``engine="sat"`` — the
CNF encoding solved by the DPLL solver of :mod:`repro.reductions.dpll`, and
``engine="parallel"`` — the sharded process-parallel engine of
:mod:`repro.search.parallel`) on the workloads the other benchmark files
sweep, and extends the sweeps to regimes each engine targets:

* sizes whose cross product the naive path cannot materialise at all (the
  propagating/SAT-only scale-up rows),
* the inequality-heavy chain family
  (:func:`repro.workloads.generator.inequality_chain_workload`), whose
  ≠-laden constraints the monotone-CC pruner cannot prune early but the SAT
  engine refutes by unit propagation and conflict learning, and
* the wide-pool family (:func:`repro.workloads.generator.wide_pool_workload`),
  whose root-wide, pruning-heavy search tree is the sharding regime of the
  parallel engine, and
* the wide-constraint family
  (:func:`repro.workloads.generator.wide_constraint_workload`), whose
  many-atom constraint left-hand sides make the per-node constraint check
  the dominant cost — the regime of the semi-naive **delta** checker
  (:class:`repro.search.propagation.ConstraintChecker`), compared here
  against its recompute-from-scratch ``mode="full"`` oracle on identical
  search trees.

Each case first asserts *parity* (identical verdict / model count from every
engine that runs it) and then reports the timings.  Three gates are enforced:

* the propagating engine must keep its ≥ 3x headline speedup over naive on
  the largest naive-feasible registry cases (the ISSUE 1 criterion),
* the SAT engine must beat the propagating engine on at least one
  inequality-heavy case (the ISSUE 2 criterion), in smoke mode too, and
* the parallel engine at 4 workers must reach a ≥ 2x speedup over the
  propagating engine on the wide-pool family (the ISSUE 3 criterion) —
  enforced whenever the host has at least 4 CPUs (a single-core host cannot
  physically exhibit a process-parallel speedup; the gate is then reported
  as skipped), and
* the delta checker must be ≥ 2x faster **per search node** than the full
  checker on the wide-constraint family (the ISSUE 5 criterion; both modes
  drive the identical propagating search tree, so the node counts match by
  construction and the per-node ratio is a pure constraint-checking
  comparison).

With ``--json`` every decider case additionally records the per-engine
``Decision.stats`` (search ``nodes``, CNF ``clauses``, ``wall`` seconds,
engine instantiations and worlds enumerated) next to the timings, so the
perf-trajectory artifact keeps the work counters, not only wall clocks.

Run directly (the file deliberately does not match pytest's ``test_*``
collection patterns)::

    PYTHONPATH=src python benchmarks/bench_engine.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke          # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke --json BENCH_ENGINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.completeness.consistency import is_consistent  # noqa: E402
from repro.completeness.strong import is_strongly_complete  # noqa: E402
from repro.ctables.possible_worlds import (  # noqa: E402
    default_active_domain,
    model_count,
)
from repro.ctables.valuation import count_valuations  # noqa: E402
from repro.reductions.consistency_reduction import (  # noqa: E402
    build_consistency_reduction,
)
from repro.reductions.sat import random_forall_exists_instance  # noqa: E402
from repro.search.engine import WorldSearch  # noqa: E402
from repro.search.parallel import shutdown_pools  # noqa: E402
from repro.search.propagation import ConstraintChecker  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    inequality_chain_workload,
    registry_workload,
    wide_constraint_workload,
    wide_pool_workload,
)

#: Acceptance floor for the propagating-vs-naive headline (ISSUE 1 criterion).
REQUIRED_SPEEDUP = 3.0
#: The SAT engine must beat propagating on ≥ 1 inequality-heavy case (ISSUE 2).
REQUIRED_SAT_WIN = 1.0
#: The parallel engine must reach this speedup over propagating on the
#: wide-pool family (ISSUE 3 criterion), at the worker count below.
REQUIRED_PARALLEL_SPEEDUP = 2.0
PARALLEL_GATE_WORKERS = 4
#: The delta checker must reach this per-node speedup over the full checker
#: on the wide-constraint family (the ISSUE 5 criterion).
REQUIRED_DELTA_SPEEDUP = 2.0

ALL_ENGINES = ("naive", "propagating", "sat", "parallel")


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@dataclass
class Case:
    """One engine comparison: a label plus a verdict-returning callable."""

    group: str
    label: str
    run: Callable[[str], object]
    engines: tuple[str, ...] = ALL_ENGINES
    headline: bool = False
    sat_showcase: bool = False
    parallel_showcase: bool = False


@dataclass
class Outcome:
    case: Case
    verdict: object
    seconds: dict[str, float] = field(default_factory=dict)
    #: Per-engine ``Decision.stats`` payloads (empty for non-Decision verdicts).
    stats: dict[str, dict] = field(default_factory=dict)

    def speedup(self, engine: str, over: str) -> float | None:
        base = self.seconds.get(over)
        target = self.seconds.get(engine)
        if base is None or target is None or target <= 0:
            return None
        return base / target


def _timed(function: Callable[[], object]) -> tuple[object, float]:
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def _decision_stats(verdict: object) -> dict | None:
    """The JSON-able ``Decision.stats`` payload of a decider verdict."""
    stats = getattr(verdict, "stats", None)
    if stats is None:
        return None
    return {
        "nodes": stats.nodes,
        "clauses": stats.clauses,
        "wall": round(stats.wall_time, 6),
        "searches": stats.searches,
        "worlds": stats.worlds,
    }


def _registry_cases(smoke: bool) -> list[Case]:
    consistency_sweep = [2, 3] if smoke else [2, 3, 4, 5]
    strong_sweep = [1, 2] if smoke else [1, 2, 3]
    cases: list[Case] = []
    for variable_count in consistency_sweep:
        workload = registry_workload(
            master_size=3, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="consistency (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == consistency_sweep[-1],
            )
        )
    for variable_count in strong_sweep:
        workload = registry_workload(
            master_size=3, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="rcdp-strong (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_strongly_complete(
                    w.cinstance, w.point_query, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == strong_sweep[-1],
            )
        )
    return cases


def _reduction_cases(smoke: bool) -> list[Case]:
    sweep = [(1, 1, 2), (2, 1, 3)] if smoke else [(1, 1, 2), (2, 1, 3), (2, 2, 4)]
    cases = []
    for dimensions in sweep:
        formula = random_forall_exists_instance(*dimensions, seed=7)
        reduction = build_consistency_reduction(formula)
        universal, existential, clauses = dimensions
        cases.append(
            Case(
                group="consistency (Prop. 3.3 reduction)",
                label=f"x{universal}_y{existential}_c{clauses}",
                run=lambda engine, r=reduction: is_consistent(
                    r.cinstance, r.master, r.constraints, engine=engine
                ),
            )
        )
    return cases


def _model_count_cases(smoke: bool) -> list[Case]:
    sweep = [2, 3] if smoke else [2, 3, 4]
    cases = []
    for variable_count in sweep:
        workload = registry_workload(
            master_size=4, db_rows=max(3, variable_count), variable_count=variable_count
        )
        cases.append(
            Case(
                group="model_count (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: model_count(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
            )
        )
    return cases


def _inequality_cases(smoke: bool) -> list[Case]:
    """The ≠-heavy chain family: the SAT engine's target regime.

    Odd closed cycles are inconsistent; refuting them forces the propagating
    engine through its full backtracking tree with per-node CQ re-evaluation,
    while the SAT engine refutes the (linear-sized) CNF once.  The naive
    cross product (``2^(2·pairs)`` valuations) only joins at the smallest
    size.
    """
    sweep = [5, 9, 13] if smoke else [5, 9, 13, 17, 21]
    cases = []
    for pair_count in sweep:
        workload = inequality_chain_workload(pair_count, close_cycle=True)
        naive_feasible = pair_count <= 5
        cases.append(
            Case(
                group="consistency (inequality chain)",
                label=f"pairs={pair_count}"
                + ("" if naive_feasible else f" (naive: 2^{2 * pair_count} valuations)"),
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                engines=ALL_ENGINES if naive_feasible else ("propagating", "sat"),
                sat_showcase=True,
            )
        )
    return cases


def _scale_up_cases(smoke: bool) -> list[Case]:
    """Sizes whose cross product the naive path cannot materialise."""
    sweep = [(6, 6, 6)] if smoke else [(6, 6, 6), (8, 8, 8), (10, 10, 10)]
    cases = []
    for master_size, db_rows, variable_count in sweep:
        workload = registry_workload(
            master_size=master_size, db_rows=db_rows, variable_count=variable_count
        )
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        valuations = count_valuations(workload.cinstance, adom)
        cases.append(
            Case(
                group="consistency scale-up (naive infeasible)",
                label=(
                    f"master={master_size} rows={db_rows} vars={variable_count} "
                    f"(naive: {valuations:.2e} valuations)"
                ),
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                engines=("propagating", "sat", "parallel"),
            )
        )
    return cases


def _wide_pool_cases(smoke: bool) -> list[Case]:
    """The wide-pool family: the parallel engine's target regime.

    Every variable's candidate pool is the whole (wide) active domain and the
    all-distinct denial CC makes the per-node pruning work heavy, so the
    search tree shards cleanly across worker processes.  In the pigeonhole
    regime (``rows > values_per_key``) the instance is inconsistent and every
    engine must exhaust the tree — the worst case the strong/weak deciders
    face on every world visit.  The naive cross product (and the grounding-
    heavy CNF encoding of the SAT engine) are not competitive here, so the
    comparison is propagating vs parallel, with ``workers=4`` pinned on the
    parallel side (the gate's worker count).
    """
    exists_sweep = [(6, 5), (7, 6)] if smoke else [(6, 5), (7, 6), (8, 6)]
    count_sweep = [(6, 6)] if smoke else [(6, 6), (7, 6)]
    cases = []

    def workers_for(engine: str) -> int | None:
        return PARALLEL_GATE_WORKERS if engine == "parallel" else None

    for rows, values_per_key in exists_sweep:
        workload = wide_pool_workload(rows, values_per_key)
        cases.append(
            Case(
                group="consistency (wide pool)",
                label=f"rows={rows} vpk={values_per_key}",
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints,
                    engine=engine, workers=workers_for(engine),
                ),
                engines=("propagating", "parallel"),
                parallel_showcase=True,
            )
        )
    for rows, values_per_key in count_sweep:
        workload = wide_pool_workload(rows, values_per_key)
        cases.append(
            Case(
                group="model_count (wide pool)",
                label=f"rows={rows} vpk={values_per_key}",
                run=lambda engine, w=workload: model_count(
                    w.cinstance, w.master, w.constraints,
                    engine=engine, workers=workers_for(engine),
                ),
                engines=("propagating", "parallel"),
                parallel_showcase=True,
            )
        )
    return cases


def _checker_sweep(smoke: bool) -> list[tuple[str, object]]:
    sweep = [(12, 3)] if smoke else [(12, 3), (18, 3), (24, 3)]
    return [
        (
            f"rows={ground_rows} width={width}",
            wide_constraint_workload(ground_rows=ground_rows, width=width),
        )
        for ground_rows, width in sweep
    ]


def run_checker_comparison(smoke: bool) -> list[dict] | None:
    """Delta-vs-full ConstraintChecker on identical propagating search trees.

    Both modes drive :class:`repro.search.engine.WorldSearch` over the same
    wide-constraint instance; the enumerated ``(valuation, world)`` streams
    and the node/prune counters must be identical (a parity failure returns
    ``None``), so the per-node wall-clock ratio isolates the constraint-
    checking cost the delta evaluation removes.
    """
    results: list[dict] = []
    for label, workload in _checker_sweep(smoke):
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        observed: dict[str, tuple] = {}
        for mode in ("delta", "full"):
            checker = ConstraintChecker(workload.master, workload.constraints, mode=mode)
            search = WorldSearch(
                workload.cinstance, workload.master, workload.constraints, adom,
                checker=checker,
            )
            (pairs, elapsed) = _timed(lambda s=search: list(s.search()))
            observed[mode] = (pairs, search.stats.nodes, elapsed)
        delta_pairs, delta_nodes, delta_s = observed["delta"]
        full_pairs, full_nodes, full_s = observed["full"]
        if delta_pairs != full_pairs or delta_nodes != full_nodes:
            print(
                f"PARITY FAILURE in checker (wide constraints) [{label}]: "
                f"delta nodes={delta_nodes} worlds={len(delta_pairs)}, "
                f"full nodes={full_nodes} worlds={len(full_pairs)}"
            )
            return None
        results.append(
            {
                "label": label,
                "nodes": delta_nodes,
                "worlds": len(delta_pairs),
                "delta_seconds": round(delta_s, 6),
                "full_seconds": round(full_s, 6),
                "per_node_speedup": (full_s / delta_s) if delta_s > 0 else None,
            }
        )
    return results


def print_checker_report(results: list[dict]) -> None:
    print("\n== checker: delta vs full (wide constraints, per-node) ==")
    width = max(len(f"[{r['label']}]") for r in results)
    for r in results:
        name = f"[{r['label']}]".ljust(width)
        per_node_delta = r["delta_seconds"] / max(1, r["nodes"]) * 1e6
        per_node_full = r["full_seconds"] / max(1, r["nodes"]) * 1e6
        speedup = r["per_node_speedup"]
        ratio = "n/a (below timer resolution)" if speedup is None else f"{speedup:.2f}x"
        print(
            f"{name}  nodes={r['nodes']:5d}  delta={per_node_delta:9.1f}us/node  "
            f"full={per_node_full:9.1f}us/node  "
            f"delta/full={ratio}"
        )


def run_cases(cases: list[Case]) -> list[Outcome] | None:
    """Time every case on its engines; ``None`` signals a parity failure."""
    outcomes: list[Outcome] = []
    for case in cases:
        seconds: dict[str, float] = {}
        verdicts: dict[str, object] = {}
        stats: dict[str, dict] = {}
        for engine in case.engines:
            verdict, elapsed = _timed(lambda e=engine: case.run(e))
            seconds[engine] = elapsed
            verdicts[engine] = verdict
            decision_stats = _decision_stats(verdict)
            if decision_stats is not None:
                stats[engine] = decision_stats
        distinct = {repr(v) for v in verdicts.values()}
        if len(distinct) > 1:
            print(
                f"PARITY FAILURE in {case.group} [{case.label}]: "
                + ", ".join(f"{e}={v!r}" for e, v in verdicts.items())
            )
            return None
        outcomes.append(
            Outcome(
                case=case,
                verdict=next(iter(verdicts.values())),
                seconds=seconds,
                stats=stats,
            )
        )
    return outcomes


def _format_cell(outcome: Outcome, engine: str) -> str:
    elapsed = outcome.seconds.get(engine)
    if elapsed is None:
        return "         -"
    return f"{elapsed * 1e3:8.2f}ms"


def print_report(outcomes: list[Outcome]) -> None:
    width = max(len(f"[{o.case.label}]") for o in outcomes)
    group = None
    for outcome in outcomes:
        if outcome.case.group != group:
            group = outcome.case.group
            print(f"\n== {group} ==")
            header = "".ljust(width)
            print(
                f"{header}  {'naive':>10}  {'propagating':>11}  {'sat':>10}  "
                f"{'parallel':>10}"
            )
        name = f"[{outcome.case.label}]".ljust(width)
        prop_speed = outcome.speedup("propagating", over="naive")
        sat_speed = outcome.speedup("sat", over="propagating")
        parallel_speed = outcome.speedup("parallel", over="propagating")
        annotations = []
        if prop_speed is not None:
            annotations.append(f"prop/naive={prop_speed:.1f}x")
        if sat_speed is not None:
            annotations.append(f"sat/prop={sat_speed:.2f}x")
        if parallel_speed is not None:
            annotations.append(f"par/prop={parallel_speed:.2f}x")
        if outcome.case.headline:
            annotations.append("<== headline")
        if outcome.case.sat_showcase:
            annotations.append("<== sat gate")
        if outcome.case.parallel_showcase:
            annotations.append("<== parallel gate")
        print(
            f"{name}  {_format_cell(outcome, 'naive')}  "
            f"{_format_cell(outcome, 'propagating'):>11}  "
            f"{_format_cell(outcome, 'sat')}  "
            f"{_format_cell(outcome, 'parallel')}  "
            f"verdict={outcome.verdict!r}  " + " ".join(annotations)
        )


def evaluate_gates(
    outcomes: list[Outcome], smoke: bool, checker_results: list[dict] | None = None
) -> tuple[dict, int]:
    """Compute the acceptance gates; returns (summary, exit code)."""
    headline = [
        o.speedup("propagating", over="naive")
        for o in outcomes
        if o.case.headline and o.speedup("propagating", over="naive") is not None
    ]
    worst_headline = min(headline, default=None)

    sat_wins = {
        f"{o.case.group} [{o.case.label}]": o.speedup("sat", over="propagating")
        for o in outcomes
        if o.case.sat_showcase
    }
    best_sat = max((s for s in sat_wins.values() if s is not None), default=None)

    parallel_wins = {
        f"{o.case.group} [{o.case.label}]": o.speedup("parallel", over="propagating")
        for o in outcomes
        if o.case.parallel_showcase
    }
    best_parallel = max(
        (s for s in parallel_wins.values() if s is not None), default=None
    )
    host_cpus = _host_cpus()
    parallel_gate_enforced = host_cpus >= PARALLEL_GATE_WORKERS

    checker_results = checker_results or []
    delta_by_case = {
        f"checker (wide constraints) [{r['label']}]": r["per_node_speedup"]
        for r in checker_results
    }
    worst_delta = min(
        (s for s in delta_by_case.values() if s is not None), default=None
    )

    summary = {
        "propagating_vs_naive_headline": worst_headline,
        "required_headline_speedup": REQUIRED_SPEEDUP,
        "sat_vs_propagating_by_case": sat_wins,
        "best_sat_vs_propagating": best_sat,
        "required_sat_win": REQUIRED_SAT_WIN,
        "parallel_vs_propagating_by_case": parallel_wins,
        "best_parallel_vs_propagating": best_parallel,
        "required_parallel_speedup": REQUIRED_PARALLEL_SPEEDUP,
        "parallel_gate_workers": PARALLEL_GATE_WORKERS,
        "host_cpus": host_cpus,
        "parallel_gate_enforced": parallel_gate_enforced,
        "delta_vs_full_checker_by_case": delta_by_case,
        "worst_delta_vs_full_checker": worst_delta,
        "required_delta_speedup": REQUIRED_DELTA_SPEEDUP,
        "checker_cases": checker_results,
    }

    print()
    if worst_headline is None:
        print("No headline comparison ran (sweep too small?)")
        return summary, 1
    print(
        "Headline speedup (largest naive-feasible registry cases): "
        f"{worst_headline:.1f}x (required ≥ {REQUIRED_SPEEDUP:.0f}x"
        f"{' in full mode' if smoke else ''})"
    )
    if not smoke and worst_headline < REQUIRED_SPEEDUP:
        print("FAILED: pruned engine did not reach the required speedup")
        return summary, 1

    if best_sat is None:
        print("No SAT showcase case ran")
        return summary, 1
    print(
        "Best SAT-vs-propagating speedup on the inequality-heavy family: "
        f"{best_sat:.2f}x (required > {REQUIRED_SAT_WIN:.0f}x)"
    )
    if best_sat <= REQUIRED_SAT_WIN:
        print("FAILED: SAT engine did not beat the propagating engine anywhere")
        return summary, 1

    if best_parallel is None:
        print("No parallel showcase case ran")
        return summary, 1
    print(
        "Best parallel-vs-propagating speedup on the wide-pool family "
        f"(workers={PARALLEL_GATE_WORKERS}): {best_parallel:.2f}x "
        f"(required >= {REQUIRED_PARALLEL_SPEEDUP:.0f}x on hosts with >= "
        f"{PARALLEL_GATE_WORKERS} CPUs; this host has {host_cpus})"
    )
    if parallel_gate_enforced:
        if best_parallel < REQUIRED_PARALLEL_SPEEDUP:
            print(
                "FAILED: parallel engine did not reach the required speedup "
                "over the propagating engine on the wide-pool family"
            )
            return summary, 1
    else:
        print(
            f"parallel gate SKIPPED: host has {host_cpus} CPU(s) < "
            f"{PARALLEL_GATE_WORKERS}; a process-parallel speedup cannot be "
            "demonstrated here (parity above still covered the engine)"
        )

    if worst_delta is None:
        print("No delta-vs-full checker case ran")
        return summary, 1
    print(
        "Worst delta-vs-full checker per-node speedup on the wide-constraint "
        f"family: {worst_delta:.2f}x (required >= {REQUIRED_DELTA_SPEEDUP:.0f}x)"
    )
    if worst_delta < REQUIRED_DELTA_SPEEDUP:
        print(
            "FAILED: the delta checker did not reach the required per-node "
            "speedup over the full checker on the wide-constraint family"
        )
        return summary, 1

    print("All parity checks and perf gates passed.")
    return summary, 0


def write_json(
    path: str, outcomes: list[Outcome], summary: dict, smoke: bool, status: int
) -> None:
    payload = {
        "benchmark": "bench_engine",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "status": "passed" if status == 0 else "failed",
        "engines": list(ALL_ENGINES),
        "cases": [
            {
                "group": o.case.group,
                "label": o.case.label,
                "verdict": repr(o.verdict),
                "seconds": {k: round(v, 6) for k, v in o.seconds.items()},
                "speedups": {
                    "propagating_vs_naive": o.speedup("propagating", over="naive"),
                    "sat_vs_naive": o.speedup("sat", over="naive"),
                    "sat_vs_propagating": o.speedup("sat", over="propagating"),
                    "parallel_vs_propagating": o.speedup(
                        "parallel", over="propagating"
                    ),
                },
                "stats": o.stats,
                "headline": o.case.headline,
                "sat_showcase": o.case.sat_showcase,
                "parallel_showcase": o.case.parallel_showcase,
            }
            for o in outcomes
        ],
        "gates": summary,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"Wrote machine-readable results to {path}")


def run_benchmark(smoke: bool, json_path: str | None = None) -> int:
    cases = (
        _registry_cases(smoke)
        + _reduction_cases(smoke)
        + _model_count_cases(smoke)
        + _inequality_cases(smoke)
        + _scale_up_cases(smoke)
        + _wide_pool_cases(smoke)
    )
    try:
        outcomes = run_cases(cases)
        if outcomes is None:
            return 1
        checker_results = run_checker_comparison(smoke)
        if checker_results is None:
            return 1
        print_report(outcomes)
        print_checker_report(checker_results)
        summary, status = evaluate_gates(outcomes, smoke, checker_results)
        if json_path:
            write_json(json_path, outcomes, summary, smoke, status)
        return status
    finally:
        shutdown_pools()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep for CI: parity checks plus a quick speedup report",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write per-engine timings/speedups to PATH as JSON",
    )
    args = parser.parse_args()
    return run_benchmark(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
