"""EXP-ENGINE — four-way world-search comparison (naive / propagating / SAT / parallel).

Every decision procedure bottoms out in the enumeration of
``Mod_Adom(T, D_m, V)``.  This benchmark compares the four engines behind it
(``engine="naive"`` — the original cross-product scan, ``engine="propagating"``
— the backtracking search of :mod:`repro.search`, ``engine="sat"`` — the
CNF encoding solved by the DPLL solver of :mod:`repro.reductions.dpll`, and
``engine="parallel"`` — the sharded process-parallel engine of
:mod:`repro.search.parallel`) on the workloads the other benchmark files
sweep, and extends the sweeps to regimes each engine targets:

* sizes whose cross product the naive path cannot materialise at all (the
  propagating/SAT-only scale-up rows),
* the inequality-heavy chain family
  (:func:`repro.workloads.generator.inequality_chain_workload`), whose
  ≠-laden constraints the monotone-CC pruner cannot prune early but the SAT
  engine refutes by unit propagation and conflict learning, and
* the wide-pool family (:func:`repro.workloads.generator.wide_pool_workload`),
  whose root-wide, pruning-heavy search tree is the sharding regime of the
  parallel engine, and
* the wide-constraint family
  (:func:`repro.workloads.generator.wide_constraint_workload`), whose
  many-atom constraint left-hand sides make the per-node constraint check
  the dominant cost — the regime of the semi-naive **delta** checker
  (:class:`repro.search.propagation.ConstraintChecker`), compared here in
  three configurations (hash-indexed delta / linear-scan delta / recompute-
  from-scratch ``mode="full"``) on identical search trees, and
* the hub-skewed graph family
  (:func:`repro.workloads.generator.skewed_join_workload`), whose hot
  source bucket, projected-away tag column and empty buckets are the
  regime of the hash-join planner (:mod:`repro.search.joinplan`) behind
  the indexed delta checker.

Each case first asserts *parity* (identical verdict / model count from every
engine that runs it) and then reports the timings.  Six gates are enforced:

* the propagating engine must keep its ≥ 3x headline speedup over naive on
  the largest naive-feasible registry cases (the ISSUE 1 criterion),
* the SAT engine must beat the propagating engine on at least one
  inequality-heavy case (the ISSUE 2 criterion), in smoke mode too, and
* the parallel engine at 4 workers must reach a ≥ 2x speedup over the
  propagating engine on the wide-pool family (the ISSUE 3 criterion) —
  enforced whenever the host has at least 4 CPUs (a single-core host cannot
  physically exhibit a process-parallel speedup; the gate is then reported
  as skipped), and
* the (indexed) delta checker must be ≥ 3x faster **per search node** than
  the full checker on the wide-constraint family (the ISSUE 5 criterion,
  raised from 2x now that the delta joins run over hash indexes; all
  configurations drive the identical propagating search tree, so the node
  counts match by construction and the per-node ratio is a pure
  constraint-checking comparison), and
* the indexed delta checker must be ≥ 3x faster per node than the PR 5
  linear-scan delta baseline (``indexed=False``) on both the
  wide-constraint family and the skew family (the ISSUE 7 criterion), and
* an incremental ``Database.update`` stream — warm decision caches plus the
  live assumption-guarded DPLL solver — must answer consistency and the
  model count ≥ 3x faster than rebuilding the facade and re-deciding from
  scratch at every step of the 50-step registry update stream (the ISSUE 8
  criterion; both sides are parity-checked step by step first).

With ``--json`` every decider case additionally records the per-engine
``Decision.stats`` (search ``nodes``, CNF ``clauses``, ``wall`` seconds,
engine instantiations and worlds enumerated) next to the timings, so the
perf-trajectory artifact keeps the work counters, not only wall clocks.

Run directly (the file deliberately does not match pytest's ``test_*``
collection patterns)::

    PYTHONPATH=src python benchmarks/bench_engine.py                  # full sweep
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke          # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke --json BENCH_ENGINE.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Database  # noqa: E402
from repro.completeness.consistency import is_consistent  # noqa: E402
from repro.completeness.strong import is_strongly_complete  # noqa: E402
from repro.ctables.cinstance import CInstance  # noqa: E402
from repro.ctables.possible_worlds import (  # noqa: E402
    default_active_domain,
    model_count,
)
from repro.ctables.valuation import count_valuations  # noqa: E402
from repro.reductions.consistency_reduction import (  # noqa: E402
    build_consistency_reduction,
)
from repro.reductions.sat import random_forall_exists_instance  # noqa: E402
from repro.search.engine import WorldSearch  # noqa: E402
from repro.search.parallel import shutdown_pools  # noqa: E402
from repro.search.propagation import ConstraintChecker  # noqa: E402
from repro.search.sat_engine import SATWorldSearch  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    disconnected_components_workload,
    inequality_chain_workload,
    registry_workload,
    skewed_join_workload,
    update_stream_workload,
    wide_constraint_workload,
    wide_pool_workload,
)

#: Acceptance floor for the propagating-vs-naive headline (ISSUE 1 criterion).
REQUIRED_SPEEDUP = 3.0
#: The SAT engine must beat propagating on ≥ 1 inequality-heavy case (ISSUE 2).
REQUIRED_SAT_WIN = 1.0
#: The parallel engine must reach this speedup over propagating on the
#: wide-pool family (ISSUE 3 criterion), at the worker count below.
REQUIRED_PARALLEL_SPEEDUP = 2.0
PARALLEL_GATE_WORKERS = 4
#: The indexed delta checker must reach this per-node speedup over the full
#: checker on the wide-constraint family (the ISSUE 5 criterion, raised from
#: 2x by ISSUE 7 once the delta joins became hash-indexed).
REQUIRED_DELTA_SPEEDUP = 3.0
#: The indexed delta checker must reach this per-node speedup over the
#: linear-scan delta baseline on the wide-constraint and skew families (the
#: ISSUE 7 criterion).
REQUIRED_INDEX_SPEEDUP = 3.0
#: An incremental ``Database.update`` stream (warm decision caches + live
#: SAT solver) must beat rebuilding the facade and re-deciding from scratch
#: at every step by this factor on the 50-step registry stream (the ISSUE 8
#: criterion).
REQUIRED_UPDATE_STREAM_SPEEDUP = 3.0
UPDATE_STREAM_STEPS = 50
#: The CEGAR lazy encoding must beat the eager encoding by this factor on
#: existence checks over wide all-variable rows (build + has_world; the
#: ISSUE 10 criterion — lazy encoding skips the universe-wide violation join).
REQUIRED_CEGAR_SPEEDUP = 2.0
#: Component-caching ``count_worlds`` must beat blocking-clause enumeration
#: by this factor on instances with >= 3 independent components (ISSUE 10).
REQUIRED_COMPONENT_SPEEDUP = 5.0

#: The three ConstraintChecker configurations the checker comparison drives:
#: ``(mode, indexed)`` per label.  "delta-linear" is the PR 5 baseline
#: (semi-naive delta with per-atom linear scans); "full" is the PR 4
#: recompute-from-scratch oracle.
CHECKER_CONFIGS: dict[str, tuple[str, bool]] = {
    "delta-indexed": ("delta", True),
    "delta-linear": ("delta", False),
    "full": ("full", False),
}

ALL_ENGINES = ("naive", "propagating", "sat", "parallel")


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@dataclass
class Case:
    """One engine comparison: a label plus a verdict-returning callable."""

    group: str
    label: str
    run: Callable[[str], object]
    engines: tuple[str, ...] = ALL_ENGINES
    headline: bool = False
    sat_showcase: bool = False
    parallel_showcase: bool = False


@dataclass
class Outcome:
    case: Case
    verdict: object
    seconds: dict[str, float] = field(default_factory=dict)
    #: Per-engine ``Decision.stats`` payloads (empty for non-Decision verdicts).
    stats: dict[str, dict] = field(default_factory=dict)

    def speedup(self, engine: str, over: str) -> float | None:
        base = self.seconds.get(over)
        target = self.seconds.get(engine)
        if base is None or target is None or target <= 0:
            return None
        return base / target


def _timed(function: Callable[[], object]) -> tuple[object, float]:
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def _decision_stats(verdict: object) -> dict | None:
    """The JSON-able ``Decision.stats`` payload of a decider verdict."""
    stats = getattr(verdict, "stats", None)
    if stats is None:
        return None
    return {
        "nodes": stats.nodes,
        "clauses": stats.clauses,
        "wall": round(stats.wall_time, 6),
        "searches": stats.searches,
        "worlds": stats.worlds,
        "uses_indexes": stats.uses_indexes,
    }


def _registry_cases(smoke: bool, seed: int) -> list[Case]:
    consistency_sweep = [2, 3] if smoke else [2, 3, 4, 5]
    strong_sweep = [1, 2] if smoke else [1, 2, 3]
    cases: list[Case] = []
    for variable_count in consistency_sweep:
        workload = registry_workload(
            master_size=3,
            db_rows=max(3, variable_count),
            variable_count=variable_count,
            seed=seed,
        )
        cases.append(
            Case(
                group="consistency (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == consistency_sweep[-1],
            )
        )
    for variable_count in strong_sweep:
        workload = registry_workload(
            master_size=3,
            db_rows=max(3, variable_count),
            variable_count=variable_count,
            seed=seed,
        )
        cases.append(
            Case(
                group="rcdp-strong (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: is_strongly_complete(
                    w.cinstance, w.point_query, w.master, w.constraints, engine=engine
                ),
                headline=variable_count == strong_sweep[-1],
            )
        )
    return cases


def _reduction_cases(smoke: bool, seed: int) -> list[Case]:
    sweep = [(1, 1, 2), (2, 1, 3)] if smoke else [(1, 1, 2), (2, 1, 3), (2, 2, 4)]
    cases = []
    for dimensions in sweep:
        formula = random_forall_exists_instance(*dimensions, seed=seed + 7)
        reduction = build_consistency_reduction(formula)
        universal, existential, clauses = dimensions
        cases.append(
            Case(
                group="consistency (Prop. 3.3 reduction)",
                label=f"x{universal}_y{existential}_c{clauses}",
                run=lambda engine, r=reduction: is_consistent(
                    r.cinstance, r.master, r.constraints, engine=engine
                ),
            )
        )
    return cases


def _model_count_cases(smoke: bool, seed: int) -> list[Case]:
    sweep = [2, 3] if smoke else [2, 3, 4]
    cases = []
    for variable_count in sweep:
        workload = registry_workload(
            master_size=4,
            db_rows=max(3, variable_count),
            variable_count=variable_count,
            seed=seed,
        )
        cases.append(
            Case(
                group="model_count (registry)",
                label=f"vars={variable_count}",
                run=lambda engine, w=workload: model_count(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
            )
        )
    return cases


def _inequality_cases(smoke: bool) -> list[Case]:
    """The ≠-heavy chain family: the SAT engine's target regime.

    Odd closed cycles are inconsistent; refuting them forces the propagating
    engine through its full backtracking tree with per-node CQ re-evaluation,
    while the SAT engine refutes the (linear-sized) CNF once.  The naive
    cross product (``2^(2·pairs)`` valuations) only joins at the smallest
    size.
    """
    sweep = [5, 9, 13] if smoke else [5, 9, 13, 17, 21]
    cases = []
    for pair_count in sweep:
        workload = inequality_chain_workload(pair_count, close_cycle=True)
        naive_feasible = pair_count <= 5
        cases.append(
            Case(
                group="consistency (inequality chain)",
                label=f"pairs={pair_count}"
                + ("" if naive_feasible else f" (naive: 2^{2 * pair_count} valuations)"),
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                engines=ALL_ENGINES if naive_feasible else ("propagating", "sat"),
                sat_showcase=True,
            )
        )
    return cases


def _scale_up_cases(smoke: bool, seed: int) -> list[Case]:
    """Sizes whose cross product the naive path cannot materialise."""
    sweep = [(6, 6, 6)] if smoke else [(6, 6, 6), (8, 8, 8), (10, 10, 10)]
    cases = []
    for master_size, db_rows, variable_count in sweep:
        workload = registry_workload(
            master_size=master_size,
            db_rows=db_rows,
            variable_count=variable_count,
            seed=seed,
        )
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        valuations = count_valuations(workload.cinstance, adom)
        cases.append(
            Case(
                group="consistency scale-up (naive infeasible)",
                label=(
                    f"master={master_size} rows={db_rows} vars={variable_count} "
                    f"(naive: {valuations:.2e} valuations)"
                ),
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints, engine=engine
                ),
                engines=("propagating", "sat", "parallel"),
            )
        )
    return cases


def _wide_pool_cases(smoke: bool) -> list[Case]:
    """The wide-pool family: the parallel engine's target regime.

    Every variable's candidate pool is the whole (wide) active domain and the
    all-distinct denial CC makes the per-node pruning work heavy, so the
    search tree shards cleanly across worker processes.  In the pigeonhole
    regime (``rows > values_per_key``) the instance is inconsistent and every
    engine must exhaust the tree — the worst case the strong/weak deciders
    face on every world visit.  The naive cross product (and the grounding-
    heavy CNF encoding of the SAT engine) are not competitive here, so the
    comparison is propagating vs parallel, with ``workers=4`` pinned on the
    parallel side (the gate's worker count).
    """
    exists_sweep = [(6, 5), (7, 6)] if smoke else [(6, 5), (7, 6), (8, 6)]
    count_sweep = [(6, 6)] if smoke else [(6, 6), (7, 6)]
    cases = []

    def workers_for(engine: str) -> int | None:
        return PARALLEL_GATE_WORKERS if engine == "parallel" else None

    for rows, values_per_key in exists_sweep:
        workload = wide_pool_workload(rows, values_per_key)
        cases.append(
            Case(
                group="consistency (wide pool)",
                label=f"rows={rows} vpk={values_per_key}",
                run=lambda engine, w=workload: is_consistent(
                    w.cinstance, w.master, w.constraints,
                    engine=engine, workers=workers_for(engine),
                ),
                engines=("propagating", "parallel"),
                parallel_showcase=True,
            )
        )
    for rows, values_per_key in count_sweep:
        workload = wide_pool_workload(rows, values_per_key)
        cases.append(
            Case(
                group="model_count (wide pool)",
                label=f"rows={rows} vpk={values_per_key}",
                run=lambda engine, w=workload: model_count(
                    w.cinstance, w.master, w.constraints,
                    engine=engine, workers=workers_for(engine),
                ),
                engines=("propagating", "parallel"),
                parallel_showcase=True,
            )
        )
    return cases


@dataclass
class CheckerCase:
    """One checker comparison: a workload plus the configurations to race.

    ``gate_delta_full`` marks the case for the delta-vs-full gate (the full
    recompute only runs there: its per-node cost grows as ``|R|^width`` and
    is intractable on the deeper/skewed cases), ``gate_index`` for the
    indexed-vs-linear gate.
    """

    label: str
    workload: object
    configs: tuple[str, ...]
    gate_delta_full: bool = False
    gate_index: bool = False


def _checker_sweep(smoke: bool) -> list[CheckerCase]:
    cases = [
        CheckerCase(
            label="wide rows=12 width=3",
            workload=wide_constraint_workload(ground_rows=12, width=3),
            configs=("delta-indexed", "delta-linear", "full"),
            gate_delta_full=True,
            gate_index=True,
        ),
        CheckerCase(
            label="wide rows=12 width=4",
            workload=wide_constraint_workload(ground_rows=12, width=4),
            configs=("delta-indexed", "delta-linear"),
            gate_index=True,
        ),
        CheckerCase(
            label="skew hub=24",
            workload=skewed_join_workload(hub_degree=24),
            configs=("delta-indexed", "delta-linear"),
            gate_index=True,
        ),
    ]
    if not smoke:
        cases += [
            CheckerCase(
                label=f"wide rows={ground_rows} width=3",
                workload=wide_constraint_workload(ground_rows=ground_rows, width=3),
                configs=("delta-indexed", "delta-linear", "full"),
                gate_delta_full=True,
                gate_index=True,
            )
            for ground_rows in (18, 24)
        ]
        cases += [
            CheckerCase(
                label="wide rows=18 width=4",
                workload=wide_constraint_workload(ground_rows=18, width=4),
                configs=("delta-indexed", "delta-linear"),
                gate_index=True,
            ),
            CheckerCase(
                label="skew hub=48",
                workload=skewed_join_workload(hub_degree=48),
                configs=("delta-indexed", "delta-linear"),
                gate_index=True,
            ),
        ]
    return cases


def run_checker_comparison(smoke: bool) -> list[dict] | None:
    """Race the ConstraintChecker configurations on identical search trees.

    Every configuration of :data:`CHECKER_CONFIGS` drives
    :class:`repro.search.engine.WorldSearch` over the same instance; the
    enumerated ``(valuation, world)`` streams and the node counters must be
    identical (a parity failure returns ``None``), so the per-node
    wall-clock ratios isolate the constraint-checking cost: indexed delta vs
    the full recompute (the ISSUE 5 gate) and indexed delta vs the PR 5
    linear-scan delta (the ISSUE 7 gate).
    """
    results: list[dict] = []
    for case in _checker_sweep(smoke):
        workload = case.workload
        adom = default_active_domain(
            workload.cinstance, workload.master, workload.constraints
        )
        observed: dict[str, tuple] = {}
        for config in case.configs:
            mode, indexed = CHECKER_CONFIGS[config]
            checker = ConstraintChecker(
                workload.master, workload.constraints, mode=mode, indexed=indexed
            )
            search = WorldSearch(
                workload.cinstance, workload.master, workload.constraints, adom,
                checker=checker,
            )
            (pairs, elapsed) = _timed(lambda s=search: list(s.search()))
            observed[config] = (pairs, search.stats.nodes, elapsed)
        reference = case.configs[0]
        ref_pairs, ref_nodes, _ = observed[reference]
        for config in case.configs[1:]:
            pairs, nodes, _ = observed[config]
            if pairs != ref_pairs or nodes != ref_nodes:
                print(
                    f"PARITY FAILURE in checker [{case.label}]: "
                    f"{reference} nodes={ref_nodes} worlds={len(ref_pairs)}, "
                    f"{config} nodes={nodes} worlds={len(pairs)}"
                )
                return None
        seconds = {config: observed[config][2] for config in case.configs}

        def _ratio(slow: str, fast: str) -> float | None:
            if slow not in seconds or seconds[fast] <= 0:
                return None
            return seconds[slow] / seconds[fast]

        results.append(
            {
                "label": case.label,
                "nodes": ref_nodes,
                "worlds": len(ref_pairs),
                "seconds": {k: round(v, 6) for k, v in seconds.items()},
                "indexed_vs_linear": _ratio("delta-linear", "delta-indexed"),
                "indexed_vs_full": _ratio("full", "delta-indexed"),
                "gate_delta_full": case.gate_delta_full,
                "gate_index": case.gate_index,
            }
        )
    return results


def print_checker_report(results: list[dict]) -> None:
    print("\n== checker: indexed delta vs linear delta vs full (per-node) ==")
    width = max(len(f"[{r['label']}]") for r in results)
    for r in results:
        name = f"[{r['label']}]".ljust(width)
        cells = []
        for config in CHECKER_CONFIGS:
            elapsed = r["seconds"].get(config)
            if elapsed is None:
                cells.append(f"{config}=        -")
                continue
            per_node = elapsed / max(1, r["nodes"]) * 1e6
            cells.append(f"{config}={per_node:9.1f}us/node")
        annotations = []
        if r["indexed_vs_linear"] is not None:
            annotations.append(f"idx/lin={r['indexed_vs_linear']:.2f}x")
        if r["indexed_vs_full"] is not None:
            annotations.append(f"idx/full={r['indexed_vs_full']:.2f}x")
        if r["gate_index"]:
            annotations.append("<== index gate")
        if r["gate_delta_full"]:
            annotations.append("<== delta gate")
        print(
            f"{name}  nodes={r['nodes']:5d}  " + "  ".join(cells) + "  "
            + " ".join(annotations)
        )


@dataclass
class SatGen2Case:
    """One gen-2 SAT comparison on the disconnected-components family.

    ``kind`` selects the race: ``"cegar"`` times build + ``has_world`` with
    the eager vs the lazy (CEGAR) encoding on wide all-variable rows;
    ``"components"`` times ``count_worlds`` via blocking-clause enumeration
    vs component-caching counting on multi-component instances.
    """

    label: str
    kind: str  # "cegar" | "components"
    components: int
    rows_per_component: int
    values: int
    row_width: int


def _sat_gen2_sweep(smoke: bool) -> list[SatGen2Case]:
    cases = [
        SatGen2Case(
            label="components=3 rows=3 values=4 width=2",
            kind="cegar",
            components=3, rows_per_component=3, values=4, row_width=2,
        ),
    ]
    if smoke:
        # Small enough to stay within the smoke budget while still giving the
        # component path clear daylight over blocking-clause enumeration.
        cases.append(
            SatGen2Case(
                label="components=3 rows=3 values=4 width=1",
                kind="components",
                components=3, rows_per_component=3, values=4, row_width=1,
            )
        )
    else:
        cases += [
            SatGen2Case(
                label="components=3 rows=3 values=5 width=1",
                kind="components",
                components=3, rows_per_component=3, values=5, row_width=1,
            ),
            SatGen2Case(
                label="components=3 rows=4 values=5 width=2",
                kind="cegar",
                components=3, rows_per_component=4, values=5, row_width=2,
            ),
            SatGen2Case(
                label="components=4 rows=3 values=4 width=1",
                kind="components",
                components=4, rows_per_component=3, values=4, row_width=1,
            ),
            SatGen2Case(
                label="components=3 rows=3 values=6 width=1",
                kind="components",
                components=3, rows_per_component=3, values=6, row_width=1,
            ),
        ]
    return cases


def run_sat_gen2_comparison(smoke: bool) -> list[dict] | None:
    """Race the gen-2 SAT stack against its gen-1 baselines (ISSUE 10 gates).

    Parity first, timing second, per case of the disconnected-components
    family: CEGAR existence verdicts must agree with the eager encoding and
    with the propagating engine, component counts must agree with
    blocking-clause enumeration and the workload's closed-form world count.
    A parity failure returns ``None`` (the caller fails the run).
    """
    results: list[dict] = []
    for case in _sat_gen2_sweep(smoke):
        workload = disconnected_components_workload(
            components=case.components,
            rows_per_component=case.rows_per_component,
            values=case.values,
            row_width=case.row_width,
        )
        args = (workload.cinstance, workload.master, workload.constraints)
        if case.kind == "cegar":
            eager_verdict = SATWorldSearch(*args).has_world()
            cegar_search = SATWorldSearch(*args, cegar=True)
            cegar_verdict = cegar_search.has_world()
            propagating = WorldSearch(*args).has_world()
            if not (eager_verdict == cegar_verdict == propagating):
                print(
                    f"PARITY FAILURE in sat-gen2 [{case.label}]: "
                    f"eager={eager_verdict} cegar={cegar_verdict} "
                    f"propagating={propagating}"
                )
                return None
            _, eager_seconds = _timed(
                lambda a=args: SATWorldSearch(*a).has_world()
            )
            _, cegar_seconds = _timed(
                lambda a=args: SATWorldSearch(*a, cegar=True).has_world()
            )
            results.append(
                {
                    "label": case.label,
                    "kind": "cegar",
                    "verdict": eager_verdict,
                    "cegar_rounds": cegar_search.stats.encoding.cegar_rounds,
                    "seconds": {
                        "eager": round(eager_seconds, 6),
                        "cegar": round(cegar_seconds, 6),
                    },
                    "speedup": (
                        eager_seconds / cegar_seconds
                        if cegar_seconds > 0 else None
                    ),
                }
            )
        else:
            enum_search = SATWorldSearch(*args)
            component_search = SATWorldSearch(*args, component_counting=True)
            enum_count, enum_seconds = _timed(enum_search.count_worlds)
            component_count, component_seconds = _timed(
                component_search.count_worlds
            )
            if not (enum_count == component_count == workload.world_count):
                print(
                    f"PARITY FAILURE in sat-gen2 [{case.label}]: "
                    f"enumeration={enum_count} components={component_count} "
                    f"expected={workload.world_count}"
                )
                return None
            results.append(
                {
                    "label": case.label,
                    "kind": "components",
                    "count": enum_count,
                    "components": component_search.stats.components,
                    "component_cache_hits": (
                        component_search.stats.component_cache_hits
                    ),
                    "seconds": {
                        "enumeration": round(enum_seconds, 6),
                        "components": round(component_seconds, 6),
                    },
                    "speedup": (
                        enum_seconds / component_seconds
                        if component_seconds > 0 else None
                    ),
                }
            )
    return results


def print_sat_gen2_report(results: list[dict]) -> None:
    print("\n== sat gen-2: CEGAR vs eager encoding, component vs enumeration counting ==")
    width = max(len(f"[{r['label']}]") for r in results)
    for r in results:
        name = f"[{r['label']}]".ljust(width)
        seconds = r["seconds"]
        if r["kind"] == "cegar":
            detail = (
                f"eager={seconds['eager'] * 1e3:8.2f}ms  "
                f"cegar={seconds['cegar'] * 1e3:8.2f}ms  "
                f"rounds={r['cegar_rounds']}"
            )
            gate = "<== cegar gate"
        else:
            detail = (
                f"enum={seconds['enumeration'] * 1e3:8.2f}ms  "
                f"comp={seconds['components'] * 1e3:8.2f}ms  "
                f"count={r['count']} cache_hits={r['component_cache_hits']}"
            )
            gate = "<== component gate"
        speedup = "-" if r["speedup"] is None else f"{r['speedup']:.2f}x"
        print(f"{name}  {detail}  speedup={speedup}  {gate}")


@dataclass
class UpdateStreamCase:
    """One update-stream comparison: workload parameters for both sides."""

    label: str
    steps: int
    master_size: int
    db_rows: int
    variable_count: int


def _update_stream_sweep(smoke: bool) -> list[UpdateStreamCase]:
    cases = [
        UpdateStreamCase(
            label=f"registry steps={UPDATE_STREAM_STEPS} master=4 vars=1",
            steps=UPDATE_STREAM_STEPS,
            master_size=4,
            db_rows=3,
            variable_count=1,
        )
    ]
    if not smoke:
        cases.append(
            UpdateStreamCase(
                label=f"registry steps={UPDATE_STREAM_STEPS} master=6 vars=2",
                steps=UPDATE_STREAM_STEPS,
                master_size=6,
                db_rows=4,
                variable_count=2,
            )
        )
    return cases


def run_update_stream_comparison(smoke: bool, seed: int) -> list[dict] | None:
    """Race an incremental facade against rebuild-and-redecide per step.

    Both sides see the identical ground add/drop script
    (:func:`repro.workloads.generator.update_stream_workload`; adds stay
    inside the registry constants, so the Prop. 3.3 Adom never changes and
    the incremental side's live SAT solver survives the whole stream).  At
    every step each side answers consistency (witness-free) and the model
    count on ``engine="sat"``:

    * **incremental** — one :class:`repro.api.Database` absorbs the step via
      :meth:`~repro.api.Database.update` (warm decision caches, incremental
      re-encode, live DPLL solver under assumption flips);
    * **rebuild** — a fresh facade is constructed over the post-step
      c-instance and decides from scratch (Adom + checker + CNF + solver).

    The per-step verdict/count streams must be identical (``None`` on a
    parity failure); the wall-clock ratio is the ISSUE 8 gate.
    """
    results: list[dict] = []
    for case in _update_stream_sweep(smoke):
        workload = update_stream_workload(
            steps=case.steps,
            master_size=case.master_size,
            db_rows=case.db_rows,
            variable_count=case.variable_count,
            seed=seed,
        )
        base = workload.base

        def apply(db: Database, step) -> None:
            rows = {step.relation: [step.row]}
            if step.kind == "add":
                db.update(add_rows=rows)
            else:
                db.update(drop_rows=rows)

        # Pre-compute the post-step c-instances outside both timed loops (the
        # rebuild side is charged for facade construction + deciding, not for
        # mutating row lists; the incremental side is charged for the update
        # itself too).
        mutator = Database(base.cinstance, base.master, base.constraints)
        step_instances: list[CInstance] = []
        for step in workload.script:
            apply(mutator, step)
            step_instances.append(mutator.cinstance)

        incremental = Database(
            base.cinstance, base.master, base.constraints, engine="sat"
        )
        incremental.is_consistent(witness=False)  # prime encoder + solver
        incremental_answers: list[tuple[bool, int]] = []

        def run_incremental() -> None:
            for step in workload.script:
                apply(incremental, step)
                verdict = incremental.is_consistent(witness=False)
                count = incremental.count()
                incremental_answers.append((bool(verdict), count.value))

        _, incremental_seconds = _timed(run_incremental)
        final = incremental.is_consistent(witness=False)

        rebuild_answers: list[tuple[bool, int]] = []

        def run_rebuild() -> None:
            for cinst in step_instances:
                db = Database(cinst, base.master, base.constraints, engine="sat")
                verdict = db.is_consistent(witness=False)
                count = db.count()
                rebuild_answers.append((bool(verdict), count.value))

        _, rebuild_seconds = _timed(run_rebuild)

        if incremental_answers != rebuild_answers:
            first = next(
                i
                for i, (a, b) in enumerate(zip(incremental_answers, rebuild_answers))
                if a != b
            )
            print(
                f"PARITY FAILURE in update stream [{case.label}] at step "
                f"{first}: incremental={incremental_answers[first]} "
                f"rebuild={rebuild_answers[first]}"
            )
            return None

        results.append(
            {
                "label": case.label,
                "steps": case.steps,
                "seconds": {
                    "incremental": round(incremental_seconds, 6),
                    "rebuild": round(rebuild_seconds, 6),
                },
                "speedup": (
                    rebuild_seconds / incremental_seconds
                    if incremental_seconds > 0
                    else None
                ),
                "reused_solver": final.stats.reused_solver,
                "final_cache_hit": final.stats.cache_hit,
            }
        )
    return results


def print_update_stream_report(results: list[dict]) -> None:
    print("\n== update stream: incremental Database.update vs rebuild ==")
    width = max(len(f"[{r['label']}]") for r in results)
    for r in results:
        name = f"[{r['label']}]".ljust(width)
        seconds = r["seconds"]
        speedup = r["speedup"]
        print(
            f"{name}  incremental={seconds['incremental'] * 1e3:8.2f}ms  "
            f"rebuild={seconds['rebuild'] * 1e3:8.2f}ms  "
            f"speedup={speedup:.2f}x  "
            f"reused_solver={r['reused_solver']}  <== update gate"
        )


def run_cases(cases: list[Case]) -> list[Outcome] | None:
    """Time every case on its engines; ``None`` signals a parity failure."""
    outcomes: list[Outcome] = []
    for case in cases:
        seconds: dict[str, float] = {}
        verdicts: dict[str, object] = {}
        stats: dict[str, dict] = {}
        for engine in case.engines:
            verdict, elapsed = _timed(lambda e=engine: case.run(e))
            seconds[engine] = elapsed
            verdicts[engine] = verdict
            decision_stats = _decision_stats(verdict)
            if decision_stats is not None:
                stats[engine] = decision_stats
        distinct = {repr(v) for v in verdicts.values()}
        if len(distinct) > 1:
            print(
                f"PARITY FAILURE in {case.group} [{case.label}]: "
                + ", ".join(f"{e}={v!r}" for e, v in verdicts.items())
            )
            return None
        outcomes.append(
            Outcome(
                case=case,
                verdict=next(iter(verdicts.values())),
                seconds=seconds,
                stats=stats,
            )
        )
    return outcomes


def _format_cell(outcome: Outcome, engine: str) -> str:
    elapsed = outcome.seconds.get(engine)
    if elapsed is None:
        return "         -"
    return f"{elapsed * 1e3:8.2f}ms"


def print_report(outcomes: list[Outcome]) -> None:
    width = max(len(f"[{o.case.label}]") for o in outcomes)
    group = None
    for outcome in outcomes:
        if outcome.case.group != group:
            group = outcome.case.group
            print(f"\n== {group} ==")
            header = "".ljust(width)
            print(
                f"{header}  {'naive':>10}  {'propagating':>11}  {'sat':>10}  "
                f"{'parallel':>10}"
            )
        name = f"[{outcome.case.label}]".ljust(width)
        prop_speed = outcome.speedup("propagating", over="naive")
        sat_speed = outcome.speedup("sat", over="propagating")
        parallel_speed = outcome.speedup("parallel", over="propagating")
        annotations = []
        if prop_speed is not None:
            annotations.append(f"prop/naive={prop_speed:.1f}x")
        if sat_speed is not None:
            annotations.append(f"sat/prop={sat_speed:.2f}x")
        if parallel_speed is not None:
            annotations.append(f"par/prop={parallel_speed:.2f}x")
        if outcome.case.headline:
            annotations.append("<== headline")
        if outcome.case.sat_showcase:
            annotations.append("<== sat gate")
        if outcome.case.parallel_showcase:
            annotations.append("<== parallel gate")
        print(
            f"{name}  {_format_cell(outcome, 'naive')}  "
            f"{_format_cell(outcome, 'propagating'):>11}  "
            f"{_format_cell(outcome, 'sat')}  "
            f"{_format_cell(outcome, 'parallel')}  "
            f"verdict={outcome.verdict!r}  " + " ".join(annotations)
        )


def evaluate_gates(
    outcomes: list[Outcome],
    smoke: bool,
    checker_results: list[dict] | None = None,
    update_results: list[dict] | None = None,
    sat_gen2_results: list[dict] | None = None,
) -> tuple[dict, int]:
    """Compute the acceptance gates; returns (summary, exit code)."""
    headline = [
        o.speedup("propagating", over="naive")
        for o in outcomes
        if o.case.headline and o.speedup("propagating", over="naive") is not None
    ]
    worst_headline = min(headline, default=None)

    sat_wins = {
        f"{o.case.group} [{o.case.label}]": o.speedup("sat", over="propagating")
        for o in outcomes
        if o.case.sat_showcase
    }
    best_sat = max((s for s in sat_wins.values() if s is not None), default=None)

    parallel_wins = {
        f"{o.case.group} [{o.case.label}]": o.speedup("parallel", over="propagating")
        for o in outcomes
        if o.case.parallel_showcase
    }
    best_parallel = max(
        (s for s in parallel_wins.values() if s is not None), default=None
    )
    host_cpus = _host_cpus()
    parallel_gate_enforced = host_cpus >= PARALLEL_GATE_WORKERS

    checker_results = checker_results or []
    delta_by_case = {
        f"checker [{r['label']}]": r["indexed_vs_full"]
        for r in checker_results
        if r["gate_delta_full"]
    }
    worst_delta = min(
        (s for s in delta_by_case.values() if s is not None), default=None
    )
    index_by_case = {
        f"checker [{r['label']}]": r["indexed_vs_linear"]
        for r in checker_results
        if r["gate_index"]
    }
    worst_index = min(
        (s for s in index_by_case.values() if s is not None), default=None
    )

    update_results = update_results or []
    update_by_case = {
        f"update stream [{r['label']}]": r["speedup"] for r in update_results
    }
    worst_update = min(
        (s for s in update_by_case.values() if s is not None), default=None
    )

    sat_gen2_results = sat_gen2_results or []
    cegar_by_case = {
        f"sat-gen2 [{r['label']}]": r["speedup"]
        for r in sat_gen2_results
        if r["kind"] == "cegar"
    }
    worst_cegar = min(
        (s for s in cegar_by_case.values() if s is not None), default=None
    )
    component_by_case = {
        f"sat-gen2 [{r['label']}]": r["speedup"]
        for r in sat_gen2_results
        if r["kind"] == "components"
    }
    worst_component = min(
        (s for s in component_by_case.values() if s is not None), default=None
    )

    summary = {
        "propagating_vs_naive_headline": worst_headline,
        "required_headline_speedup": REQUIRED_SPEEDUP,
        "sat_vs_propagating_by_case": sat_wins,
        "best_sat_vs_propagating": best_sat,
        "required_sat_win": REQUIRED_SAT_WIN,
        "parallel_vs_propagating_by_case": parallel_wins,
        "best_parallel_vs_propagating": best_parallel,
        "required_parallel_speedup": REQUIRED_PARALLEL_SPEEDUP,
        "parallel_gate_workers": PARALLEL_GATE_WORKERS,
        "host_cpus": host_cpus,
        "parallel_gate_enforced": parallel_gate_enforced,
        "delta_vs_full_checker_by_case": delta_by_case,
        "worst_delta_vs_full_checker": worst_delta,
        "required_delta_speedup": REQUIRED_DELTA_SPEEDUP,
        "indexed_vs_linear_delta_by_case": index_by_case,
        "worst_indexed_vs_linear_delta": worst_index,
        "required_index_speedup": REQUIRED_INDEX_SPEEDUP,
        "checker_cases": checker_results,
        "update_stream_by_case": update_by_case,
        "worst_update_stream_speedup": worst_update,
        "required_update_stream_speedup": REQUIRED_UPDATE_STREAM_SPEEDUP,
        "update_stream_cases": update_results,
        "cegar_vs_eager_by_case": cegar_by_case,
        "worst_cegar_vs_eager_speedup": worst_cegar,
        "required_cegar_speedup": REQUIRED_CEGAR_SPEEDUP,
        "component_vs_enumeration_by_case": component_by_case,
        "worst_component_vs_enumeration_speedup": worst_component,
        "required_component_speedup": REQUIRED_COMPONENT_SPEEDUP,
        "sat_gen2_cases": sat_gen2_results,
    }

    print()
    if worst_headline is None:
        print("No headline comparison ran (sweep too small?)")
        return summary, 1
    print(
        "Headline speedup (largest naive-feasible registry cases): "
        f"{worst_headline:.1f}x (required ≥ {REQUIRED_SPEEDUP:.0f}x"
        f"{' in full mode' if smoke else ''})"
    )
    if not smoke and worst_headline < REQUIRED_SPEEDUP:
        print("FAILED: pruned engine did not reach the required speedup")
        return summary, 1

    if best_sat is None:
        print("No SAT showcase case ran")
        return summary, 1
    print(
        "Best SAT-vs-propagating speedup on the inequality-heavy family: "
        f"{best_sat:.2f}x (required > {REQUIRED_SAT_WIN:.0f}x)"
    )
    if best_sat <= REQUIRED_SAT_WIN:
        print("FAILED: SAT engine did not beat the propagating engine anywhere")
        return summary, 1

    if best_parallel is None:
        print("No parallel showcase case ran")
        return summary, 1
    print(
        "Best parallel-vs-propagating speedup on the wide-pool family "
        f"(workers={PARALLEL_GATE_WORKERS}): {best_parallel:.2f}x "
        f"(required >= {REQUIRED_PARALLEL_SPEEDUP:.0f}x on hosts with >= "
        f"{PARALLEL_GATE_WORKERS} CPUs; this host has {host_cpus})"
    )
    if parallel_gate_enforced:
        if best_parallel < REQUIRED_PARALLEL_SPEEDUP:
            print(
                "FAILED: parallel engine did not reach the required speedup "
                "over the propagating engine on the wide-pool family"
            )
            return summary, 1
    else:
        print(
            f"parallel gate SKIPPED: host has {host_cpus} CPU(s) < "
            f"{PARALLEL_GATE_WORKERS}; a process-parallel speedup cannot be "
            "demonstrated here (parity above still covered the engine)"
        )

    if worst_delta is None:
        print("No delta-vs-full checker case ran")
        return summary, 1
    print(
        "Worst indexed-delta-vs-full checker per-node speedup on the "
        f"wide-constraint family: {worst_delta:.2f}x "
        f"(required >= {REQUIRED_DELTA_SPEEDUP:.0f}x)"
    )
    if worst_delta < REQUIRED_DELTA_SPEEDUP:
        print(
            "FAILED: the delta checker did not reach the required per-node "
            "speedup over the full checker on the wide-constraint family"
        )
        return summary, 1

    if worst_index is None:
        print("No indexed-vs-linear checker case ran")
        return summary, 1
    print(
        "Worst indexed-vs-linear delta checker per-node speedup on the "
        f"wide-constraint and skew families: {worst_index:.2f}x "
        f"(required >= {REQUIRED_INDEX_SPEEDUP:.0f}x)"
    )
    if worst_index < REQUIRED_INDEX_SPEEDUP:
        print(
            "FAILED: the indexed delta checker did not reach the required "
            "per-node speedup over the linear-scan delta baseline"
        )
        return summary, 1

    if worst_update is None:
        print("No update-stream case ran")
        return summary, 1
    print(
        "Worst incremental-update-vs-rebuild speedup on the "
        f"{UPDATE_STREAM_STEPS}-step registry stream: {worst_update:.2f}x "
        f"(required >= {REQUIRED_UPDATE_STREAM_SPEEDUP:.0f}x)"
    )
    if worst_update < REQUIRED_UPDATE_STREAM_SPEEDUP:
        print(
            "FAILED: the incremental update path did not reach the required "
            "speedup over rebuilding and re-deciding per step"
        )
        return summary, 1

    if worst_cegar is None:
        print("No CEGAR-vs-eager case ran")
        return summary, 1
    print(
        "Worst CEGAR-vs-eager existence speedup on wide all-variable rows: "
        f"{worst_cegar:.2f}x (required >= {REQUIRED_CEGAR_SPEEDUP:.0f}x)"
    )
    if worst_cegar < REQUIRED_CEGAR_SPEEDUP:
        print(
            "FAILED: the CEGAR lazy encoding did not reach the required "
            "speedup over the eager encoding on wide all-variable rows"
        )
        return summary, 1

    if worst_component is None:
        print("No component-counting case ran")
        return summary, 1
    print(
        "Worst component-vs-enumeration counting speedup on multi-component "
        f"instances: {worst_component:.2f}x "
        f"(required >= {REQUIRED_COMPONENT_SPEEDUP:.0f}x)"
    )
    if worst_component < REQUIRED_COMPONENT_SPEEDUP:
        print(
            "FAILED: component-caching counting did not reach the required "
            "speedup over blocking-clause enumeration"
        )
        return summary, 1

    print("All parity checks and perf gates passed.")
    return summary, 0


def write_json(
    path: str, outcomes: list[Outcome], summary: dict, smoke: bool, status: int
) -> None:
    payload = {
        "benchmark": "bench_engine",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "status": "passed" if status == 0 else "failed",
        "engines": list(ALL_ENGINES),
        "cases": [
            {
                "group": o.case.group,
                "label": o.case.label,
                "verdict": repr(o.verdict),
                "seconds": {k: round(v, 6) for k, v in o.seconds.items()},
                "speedups": {
                    "propagating_vs_naive": o.speedup("propagating", over="naive"),
                    "sat_vs_naive": o.speedup("sat", over="naive"),
                    "sat_vs_propagating": o.speedup("sat", over="propagating"),
                    "parallel_vs_propagating": o.speedup(
                        "parallel", over="propagating"
                    ),
                },
                "stats": o.stats,
                "headline": o.case.headline,
                "sat_showcase": o.case.sat_showcase,
                "parallel_showcase": o.case.parallel_showcase,
            }
            for o in outcomes
        ],
        "gates": summary,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    print(f"Wrote machine-readable results to {path}")


def run_benchmark(smoke: bool, json_path: str | None = None, seed: int = 0) -> int:
    cases = (
        _registry_cases(smoke, seed)
        + _reduction_cases(smoke, seed)
        + _model_count_cases(smoke, seed)
        + _inequality_cases(smoke)
        + _scale_up_cases(smoke, seed)
        + _wide_pool_cases(smoke)
    )
    try:
        outcomes = run_cases(cases)
        if outcomes is None:
            return 1
        checker_results = run_checker_comparison(smoke)
        if checker_results is None:
            return 1
        update_results = run_update_stream_comparison(smoke, seed)
        if update_results is None:
            return 1
        sat_gen2_results = run_sat_gen2_comparison(smoke)
        if sat_gen2_results is None:
            return 1
        print_report(outcomes)
        print_checker_report(checker_results)
        print_update_stream_report(update_results)
        print_sat_gen2_report(sat_gen2_results)
        summary, status = evaluate_gates(
            outcomes, smoke, checker_results, update_results, sat_gen2_results
        )
        if json_path:
            write_json(json_path, outcomes, summary, smoke, status)
        return status
    finally:
        shutdown_pools()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sweep for CI: parity checks plus a quick speedup report",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write per-engine timings/speedups to PATH as JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for every seeded workload builder (registry sweeps, the "
        "random ∀∃ reduction instances, the update stream); the "
        "deterministic families ignore it",
    )
    args = parser.parse_args()
    return run_benchmark(smoke=args.smoke, json_path=args.json, seed=args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
