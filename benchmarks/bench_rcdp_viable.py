"""EXP-T1-RCDP-V — Table I, row "viable completeness", column RCDP.

Paper claim: RCDPᵛ is Σᵖ₃-complete for CQ, UCQ and ∃FO⁺ for c-instances but
only Πᵖ₂-complete for ground instances (Theorem 6.1) — missing values *do*
make the viable model harder, unlike the strong model where the bound is the
same for both.  The decider searches ``Mod_Adom(T)`` for a world passing the
ground completeness test, so a positive instance can exit early while a
negative instance must sweep every world.

Measured series:

* time vs. number of variables (size of the world space);
* positive vs. negative instances (early exit vs. full sweep);
* ground instance vs. c-instance of the same size (the Πᵖ₂ / Σᵖ₃ gap).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.viable import is_viably_complete
from repro.workloads.generator import registry_workload

VARIABLE_SWEEP = [0, 1, 2, 3]


@pytest.mark.benchmark(group="rcdp-viable: variables sweep")
@pytest.mark.parametrize("variable_count", VARIABLE_SWEEP)
def test_rcdp_viable_vs_variable_count(benchmark, variable_count):
    """Exponential growth in the number of missing values (Theorem 6.1)."""
    workload = registry_workload(master_size=3, db_rows=3, variable_count=variable_count)
    verdict = run_once(
        benchmark,
        is_viably_complete,
        workload.cinstance,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["variables"] = variable_count
    benchmark.extra_info["viably_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-viable: positive vs negative")
@pytest.mark.parametrize("query_name", ["point", "full"])
def test_rcdp_viable_positive_vs_negative(benchmark, query_name):
    """Early exit on a viable witness vs. a full sweep over the worlds."""
    workload = registry_workload(master_size=4, db_rows=2, variable_count=2)
    query = workload.point_query if query_name == "point" else workload.full_query
    verdict = run_once(
        benchmark,
        is_viably_complete,
        workload.cinstance,
        query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["viably_complete"] = verdict


@pytest.mark.benchmark(group="rcdp-viable: ground vs c-instance")
@pytest.mark.parametrize("kind", ["ground", "cinstance"])
def test_rcdp_viable_ground_vs_cinstance(benchmark, kind):
    """The Πᵖ₂ (ground) vs Σᵖ₃ (c-instance) gap of Theorem 6.1."""
    from repro.ctables.cinstance import CInstance

    workload = registry_workload(master_size=4, db_rows=3, variable_count=2)
    database = (
        CInstance.from_ground_instance(workload.ground_db)
        if kind == "ground"
        else workload.cinstance
    )
    verdict = run_once(
        benchmark,
        is_viably_complete,
        database,
        workload.point_query,
        workload.master,
        workload.constraints,
    )
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["viably_complete"] = verdict
