"""EXP-FIG2 / EXP-T51 — the lower-bound constructions, made executable.

Figure 2's Boolean gadget relations and the CQ encoding of 3CNF formulas are
the engine of every hardness proof in the paper.  These benchmarks measure

* the cost of encoding random 3CNF formulas of growing size as gadget-joining
  CQs (Figure 2 / ``Q_ψ``), and
* the end-to-end cost of the Theorem 5.1 reduction: build the instance from
  an ``∃X ∀Y ∃Z ψ`` formula and decide RCDPʷ on it, cross-checking the
  verdict against the brute-force QBF truth value (the reduction's
  correctness statement).
"""

from __future__ import annotations

import pytest

from benchmarks._helpers import run_once
from repro.completeness.weak import is_weakly_complete
from repro.queries.terms import Variable
from repro.reductions.gadgets import encode_formula
from repro.reductions.rcdp_weak_reduction import build_weak_rcdp_reduction
from repro.reductions.sat import (
    random_3cnf,
    random_exists_forall_exists_instance,
)
import random

CLAUSE_SWEEP = [2, 4, 8, 16]
QBF_SWEEP = [(1, 1, 1, 2), (1, 2, 1, 3), (2, 2, 1, 3)]


@pytest.mark.benchmark(group="gadgets: 3CNF → CQ encoding")
@pytest.mark.parametrize("clause_count", CLAUSE_SWEEP)
def test_formula_encoding_cost(benchmark, clause_count):
    """Size and cost of the Q_ψ encoding grow linearly in the formula."""
    formula = random_3cnf(list(range(1, 6)), clause_count, random.Random(3))
    terms = {v: Variable(f"t{v}") for v in formula.variables()}
    encoding = run_once(benchmark, encode_formula, formula, terms)
    benchmark.extra_info["clauses"] = clause_count
    benchmark.extra_info["encoding_atoms"] = len(encoding.atoms)


@pytest.mark.benchmark(group="reductions: Theorem 5.1 end-to-end")
@pytest.mark.parametrize("dimensions", QBF_SWEEP, ids=lambda d: f"x{d[0]}y{d[1]}z{d[2]}c{d[3]}")
def test_weak_rcdp_reduction_end_to_end(benchmark, dimensions):
    """Build the Theorem 5.1 instance and decide RCDPʷ; verify the equivalence."""
    outer, universal, inner, clauses = dimensions
    formula = random_exists_forall_exists_instance(outer, universal, inner, clauses, seed=11)
    reduction = build_weak_rcdp_reduction(formula)

    # The reduction produces a ground instance; coerce it once outside the timer.
    from repro.ctables.cinstance import CInstance

    cinst = CInstance.from_ground_instance(reduction.instance)

    def decide():
        return is_weakly_complete(
            cinst, reduction.query, reduction.master, reduction.constraints
        )

    verdict = run_once(benchmark, decide)
    benchmark.extra_info["qbf"] = repr(formula)
    benchmark.extra_info["weakly_complete"] = verdict
    # Theorem 5.1: φ is true iff I is NOT weakly complete for Q.
    assert verdict == (not reduction.formula_is_true())
