#!/usr/bin/env python3
"""Wire-level perf gates for the ``repro.service`` decision service.

Measures, over real sockets against a :class:`ServiceThread`:

* **warm-cache speedup** — the same decision request repeated against a
  warm facade cache must be ≥ 10x faster than its cold run (the engine
  search amortises across requests; the repeat pays HTTP + a cache probe);
* **single-flight throughput** — N identical concurrent requests must
  trigger exactly **one** engine search (``metrics.engine_runs``), and the
  whole burst must complete in well under N cold runs;
* **streaming first-world latency** — the NDJSON ``/worlds`` endpoint must
  yield its first world in a fraction of the full-enumeration drain time
  (the stream is incremental, not a materialise-then-send);
* **vs per-request cold construction** — the pre-service deployment shape
  (build a fresh ``Database`` per request, decide, throw it away) as the
  baseline the session-cache architecture must beat on repeat traffic.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
    PYTHONPATH=src python benchmarks/bench_service.py --smoke --json BENCH_SERVICE.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Database  # noqa: E402
from repro.service import ServiceClient, ServiceConfig, ServiceThread  # noqa: E402
from repro.workloads.generator import wide_pool_workload  # noqa: E402

REQUIRED_WARM_SPEEDUP = 10.0
REQUIRED_FIRST_WORLD_FRACTION = 0.5
REQUIRED_VS_REBUILD_SPEEDUP = 2.0
SINGLEFLIGHT_CLIENTS = 8

# Heavy enough that one model count is a real engine search (the wide-pool
# distinctness constraints leave P(4,4) = 24 worlds on the smoke shape,
# P(6,5) = 720 on the full one), small enough for CI.
SMOKE_SHAPE = {"rows": 4, "values_per_key": 4}
FULL_SHAPE = {"rows": 5, "values_per_key": 6}


def _percentile_ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


def bench_warm_cache(client: ServiceClient, repeats: int) -> dict:
    started = time.perf_counter()
    cold = client.decide("pool", "count")
    cold_seconds = time.perf_counter() - started
    assert cold["cache_hit"] is False, "cold run unexpectedly hit the cache"

    warm_samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        warm = client.decide("pool", "count")
        warm_samples.append(time.perf_counter() - started)
        assert warm["cache_hit"] is True, "repeat request missed the cache"
        assert warm["result"]["value"] == cold["result"]["value"]
    warm_seconds = statistics.median(warm_samples)
    return {
        "label": "model-count warm repeat",
        "cold_ms": _percentile_ms(cold_seconds),
        "warm_ms": _percentile_ms(warm_seconds),
        "speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else None,
        "worlds": cold["result"]["value"],
    }


def bench_single_flight(client: ServiceClient, base_url: str) -> dict:
    runs_before = client.metrics()["engine_runs"]
    barrier = threading.Barrier(SINGLEFLIGHT_CLIENTS)
    envelopes: list[dict] = []
    lock = threading.Lock()

    def fire() -> None:
        own = ServiceClient(base_url)
        barrier.wait()
        envelope = own.decide("flight", "count")
        with lock:
            envelopes.append(envelope)

    threads = [
        threading.Thread(target=fire) for _ in range(SINGLEFLIGHT_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    burst_seconds = time.perf_counter() - started
    engine_runs = client.metrics()["engine_runs"] - runs_before
    deduplicated = sum(1 for e in envelopes if e["deduplicated"])
    cached = sum(1 for e in envelopes if e["cache_hit"])
    values = {e["result"]["value"] for e in envelopes}
    assert len(envelopes) == SINGLEFLIGHT_CLIENTS
    assert len(values) == 1, f"divergent single-flight results: {values}"
    return {
        "label": f"{SINGLEFLIGHT_CLIENTS} identical concurrent model counts",
        "clients": SINGLEFLIGHT_CLIENTS,
        "engine_runs": engine_runs,
        "deduplicated": deduplicated,
        "cache_hits": cached,
        "burst_ms": _percentile_ms(burst_seconds),
    }


def bench_streaming(client: ServiceClient) -> dict:
    started = time.perf_counter()
    first_world_seconds = None
    worlds = 0
    with client.stream_worlds("pool") as stream:
        for _world in stream:
            if first_world_seconds is None:
                first_world_seconds = time.perf_counter() - started
            worlds += 1
    total_seconds = time.perf_counter() - started
    assert first_world_seconds is not None, "stream produced no worlds"
    return {
        "label": "NDJSON world stream",
        "worlds": worlds,
        "first_world_ms": _percentile_ms(first_world_seconds),
        "total_ms": _percentile_ms(total_seconds),
        "first_world_fraction": round(first_world_seconds / total_seconds, 3)
        if total_seconds
        else None,
    }


def bench_vs_rebuild(client: ServiceClient, shape: dict, repeats: int) -> dict:
    """Warm service requests vs building a fresh Database per request."""
    started = time.perf_counter()
    for _ in range(repeats):
        envelope = client.decide("pool", "count")
        assert envelope["cache_hit"] is True
    service_seconds = (time.perf_counter() - started) / repeats

    workload = wide_pool_workload(**shape)
    started = time.perf_counter()
    for _ in range(repeats):
        db = Database(
            workload.cinstance,
            workload.master,
            workload.constraints,
        )
        db.count()
    rebuild_seconds = (time.perf_counter() - started) / repeats
    return {
        "label": "warm service request vs per-request cold Database",
        "service_ms": _percentile_ms(service_seconds),
        "rebuild_ms": _percentile_ms(rebuild_seconds),
        "speedup": round(rebuild_seconds / service_seconds, 2)
        if service_seconds
        else None,
    }


def evaluate_gates(results: dict) -> tuple[dict, int]:
    warm = results["warm_cache"]["speedup"]
    runs = results["single_flight"]["engine_runs"]
    collapsed = (
        results["single_flight"]["deduplicated"]
        + results["single_flight"]["cache_hits"]
    )
    fraction = results["streaming"]["first_world_fraction"]
    rebuild = results["vs_rebuild"]["speedup"]
    summary = {
        "warm_cache_speedup": warm,
        "required_warm_cache_speedup": REQUIRED_WARM_SPEEDUP,
        "single_flight_engine_runs": runs,
        "single_flight_collapsed": collapsed,
        "first_world_fraction": fraction,
        "required_first_world_fraction": REQUIRED_FIRST_WORLD_FRACTION,
        "vs_rebuild_speedup": rebuild,
        "required_vs_rebuild_speedup": REQUIRED_VS_REBUILD_SPEEDUP,
    }

    print()
    print(
        f"Warm-cache repeat speedup: {warm:.1f}x "
        f"(required >= {REQUIRED_WARM_SPEEDUP:.0f}x)"
    )
    if warm is None or warm < REQUIRED_WARM_SPEEDUP:
        print("FAILED: warm-cache repeat not fast enough over its cold run")
        return summary, 1

    print(
        f"Single-flight: {results['single_flight']['clients']} identical "
        f"concurrent requests ran {runs} engine search(es), "
        f"{collapsed} collapsed (required: exactly 1 search)"
    )
    if runs != 1:
        print("FAILED: identical concurrent requests did not collapse")
        return summary, 1

    print(
        f"Streaming: first world after {fraction:.1%} of the full drain "
        f"(required < {REQUIRED_FIRST_WORLD_FRACTION:.0%})"
    )
    if fraction is None or fraction >= REQUIRED_FIRST_WORLD_FRACTION:
        print("FAILED: the stream does not yield before enumeration completes")
        return summary, 1

    print(
        f"Warm service vs per-request cold Database: {rebuild:.1f}x "
        f"(required >= {REQUIRED_VS_REBUILD_SPEEDUP:.0f}x)"
    )
    if rebuild is None or rebuild < REQUIRED_VS_REBUILD_SPEEDUP:
        print("FAILED: the session cache does not beat per-request rebuilds")
        return summary, 1

    print("All service perf gates passed.")
    return summary, 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small shapes and few repeats (the CI configuration)",
    )
    parser.add_argument("--json", help="write machine-readable results here")
    args = parser.parse_args()

    shape = SMOKE_SHAPE if args.smoke else FULL_SHAPE
    repeats = 5 if args.smoke else 20

    config = ServiceConfig(port=0, executor="thread", request_timeout=None)
    with ServiceThread(config) as svc:
        client = ServiceClient(svc.base_url)
        client.create_session("pool", "wide", params=shape)
        client.create_session("flight", "wide", params=shape)
        results = {
            "warm_cache": bench_warm_cache(client, repeats),
            "single_flight": bench_single_flight(client, svc.base_url),
            "streaming": bench_streaming(client),
            "vs_rebuild": bench_vs_rebuild(client, shape, repeats),
        }
        metrics = client.metrics()

    for result in results.values():
        print(f"{result['label']}: " + json.dumps(result))
    summary, status = evaluate_gates(results)

    if args.json:
        payload = {
            "benchmark": "bench_service",
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "status": "passed" if status == 0 else "failed",
            "shape": shape,
            "cases": results,
            "service_metrics": metrics,
            "gates": summary,
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n"
        )
        print(f"Wrote machine-readable results to {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
