"""reprolint — repo-specific AST invariant lints for the repro codebase.

Run as ``python -m tools.reprolint src tests benchmarks``; see
:mod:`tools.reprolint.core` for the framework and the waiver syntax, and
``tools/reprolint/rules/`` for the individual rules (R001–R005).
"""

from tools.reprolint.core import (
    Rule,
    Violation,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    parse_waivers,
    register_rule,
)

__all__ = [
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "parse_waivers",
    "register_rule",
]
