"""Entry point for ``python -m tools.reprolint``."""

import sys

from tools.reprolint.cli import main

sys.exit(main())
