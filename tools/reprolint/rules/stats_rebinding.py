"""R006 — stats ledgers must accumulate, never be rebound to another object's.

The engines publish observability counters through long-lived stats ledgers
(:class:`repro.reductions.dpll.SolverStats`,
:class:`repro.search.sat_engine.SATSearchStats`, ...).  Callers hold a
reference to the ledger and read it *after* the work ran, so a ledger slot
must be written once and then mutated in place.  Rebinding a slot to some
*other* object's ``.stats`` attribute — the historical
``SATWorldSearch._solver`` bug, where every call did
``self.stats.solver = solver.stats`` with a freshly built solver — silently
discards everything accumulated so far and leaves earlier readers holding a
stale ledger.

The rule therefore flags any assignment whose target is a stats slot (an
attribute path with a ``stats`` component, e.g. ``self.stats.solver``) and
whose value aliases another object's ledger (an expression ending in
``.stats``), outside ``__init__`` / ``__post_init__`` where the initial
wiring legitimately lives.  The sanctioned alternatives are to create the
ledger once (lazily is fine: ``if self.stats.solver is None: ... =
SolverStats()``) and hand the *shared* ledger to each worker
(``DPLLSolver(clauses, stats=self.stats.solver)``) so counts accumulate.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

#: Methods where wiring a ledger from a collaborator is legitimate one-time
#: initialisation rather than a mid-flight rebinding.
_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def _attribute_path(node: ast.expr) -> list[str]:
    """Dotted component names of an attribute chain (``[]`` if not one)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _is_stats_slot(target: ast.expr) -> bool:
    """Whether ``target`` is an attribute path with a ``stats`` component."""
    path = _attribute_path(target)
    return len(path) >= 2 and any("stats" in part.lower() for part in path)


def _aliases_foreign_stats(value: ast.expr) -> bool:
    """Whether ``value`` reads some object's ``.stats`` attribute."""
    return isinstance(value, ast.Attribute) and value.attr == "stats"


@register_rule
class StatsRebindingRule(Rule):
    code = "R006"
    name = "stats-ledger-rebinding"
    rationale = (
        "stats ledgers are read by callers after the fact; rebinding a slot "
        "to another object's .stats discards accumulated counts and strands "
        "earlier readers on a stale ledger — share one ledger instead"
    )
    fixture_path = "src/repro/search/example.py"

    must_flag = (
        # The historical SATWorldSearch._solver bug: every call throws away
        # the counts of every previous solver.
        "def _solver(self):\n"
        "    solver = DPLLSolver(self._encoding.clauses)\n"
        "    self.stats.solver = solver.stats\n"
        "    return solver\n",
        # Same shape through a local alias of the ledger owner.
        "def refresh(search, session):\n"
        "    search.stats.solver = session.solver.stats\n",
    )
    must_pass = (
        # One-time wiring in __init__ is the sanctioned place to alias.
        "class Search:\n"
        "    def __init__(self, solver):\n"
        "        self.stats.solver = solver.stats\n",
        # The fixed shape: create the ledger once, share it with workers.
        "def _solver(self):\n"
        "    if self.stats.solver is None:\n"
        "        self.stats.solver = SolverStats()\n"
        "    return DPLLSolver(self._clauses, stats=self.stats.solver)\n",
        # Non-ledger targets reading .stats are somebody else's business.
        "def snapshot(registry, solver):\n"
        "    registry.latest = solver.stats\n",
    )

    def applies_to(self, path: str) -> bool:
        return "src/repro/" in path

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        yield from self._visit(tree.body, path, in_init=False)

    def _visit(
        self, body: list[ast.stmt], path: str, in_init: bool
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(
                    stmt.body, path, in_init=stmt.name in _INIT_METHODS
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._visit(stmt.body, path, in_init=False)
                continue
            if not in_init:
                yield from self._check_stmt(stmt, path)
            for field in ("body", "orelse", "finalbody"):
                value = getattr(stmt, field, None)
                if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                    yield from self._visit(value, path, in_init)
            for handler in getattr(stmt, "handlers", []):
                yield from self._visit(handler.body, path, in_init)

    def _check_stmt(self, stmt: ast.stmt, path: str) -> Iterator[Violation]:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        if not _aliases_foreign_stats(value):
            return
        for target in targets:
            if _is_stats_slot(target):
                yield self.violation(
                    stmt,
                    path,
                    "stats slot rebound to another object's .stats ledger; "
                    "accumulated counts are discarded — create the ledger "
                    "once and pass it to workers (stats=...) instead",
                )
