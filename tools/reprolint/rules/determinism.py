"""R001 — no unordered-set iteration on world-enumeration paths.

The parallel engine's headline guarantee (PR 3, locked by the four-way
differential harness) is that its merged enumeration is *order-identical* to
the serial propagating engine.  That only holds while every enumeration path
is deterministic: iterating a bare ``set``/``frozenset`` hands the iteration
order to the hash seed, which varies across processes and runs.  Inside
``src/repro/search/`` and ``src/repro/ctables/possible_worlds.py``, iterate
sets only through ``sorted(...)`` (or another documented canonical order,
with a waiver).

Detection is flow-insensitive and scope-aware: a name counts as set-typed
when its parameter/variable annotation is set-like (``set``, ``frozenset``,
``AbstractSet``, ``MutableSet``) or when it is assigned a set literal, a set
comprehension, a ``set(...)``/``frozenset(...)`` call, a set-operator
expression (``|  & - ^``) over set-typed operands, or a set-algebra method
call (``.union`` etc.) on one.  Flagged contexts: ``for`` loops,
comprehension generators, and ``list()``/``tuple()``/``enumerate()``
conversions.  Membership tests and ``sorted(...)`` are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_ITERATING_CALLS = frozenset({"list", "tuple", "enumerate"})


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in _SET_TYPE_NAMES
    if isinstance(target, ast.Attribute):  # e.g. ``typing.AbstractSet``
        return target.attr in _SET_TYPE_NAMES
    return False


class _Scope:
    """One lexical scope's set-typed names (inherits the enclosing scope's)."""

    def __init__(self, parent: "_Scope | None" = None) -> None:
        self._names: set[str] = set(parent._names) if parent is not None else set()

    def add(self, name: str) -> None:
        self._names.add(name)

    def is_set_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` evaluates to an unordered set, as far as we infer."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(node.orelse)
        return False


@register_rule
class DeterminismRule(Rule):
    code = "R001"
    name = "set-iteration-on-enumeration-path"
    rationale = (
        "world-enumeration order must be deterministic (parallel-vs-serial "
        "order identity is a tested guarantee); iterate sets via sorted() or "
        "waive with a documented canonical order"
    )
    fixture_path = "src/repro/search/example.py"

    must_flag = (
        # set-annotated parameter iterated directly
        "def enumerate_worlds(pool: set[int]):\n"
        "    for value in pool:\n"
        "        yield value\n",
        # module-level set literal consumed by a comprehension
        "values = {1, 2, 3}\nresults = [v * 2 for v in values]\n",
        # set() call materialised through list()
        "def worlds(rows):\n"
        "    pending = set(rows)\n"
        "    return list(pending)\n",
        # set-operator expression iterated in a for loop
        "def merge(a: frozenset[str], b: frozenset[str]):\n"
        "    for name in a | b:\n"
        "        yield name\n",
    )
    must_pass = (
        # sorted() restores a canonical order
        "def enumerate_worlds(pool: set[int]):\n"
        "    for value in sorted(pool):\n"
        "        yield value\n",
        # sequences iterate deterministically
        "def worlds(rows: list[int]):\n"
        "    for row in rows:\n"
        "        yield row\n",
        # membership tests never observe iteration order
        "def seen_before(key: int, seen: set[int]) -> bool:\n"
        "    return key in seen\n",
    )

    def applies_to(self, path: str) -> bool:
        return "src/repro/search/" in path or path.endswith(
            "src/repro/ctables/possible_worlds.py"
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        yield from self._check_scope(tree.body, _Scope(), path)

    # ------------------------------------------------------------------
    def _check_scope(
        self, body: list[ast.stmt], scope: _Scope, path: str
    ) -> Iterator[Violation]:
        self._collect_bindings(body, scope)
        for stmt in body:
            yield from self._check_stmt(stmt, scope, path)

    def _collect_bindings(self, body: list[ast.stmt], scope: _Scope) -> None:
        """Flow-insensitively record the scope's set-typed names."""
        for node in self._walk_scope(body):
            if isinstance(node, ast.Assign):
                if scope.is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            scope.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and (
                    _annotation_is_set(node.annotation)
                    or (node.value is not None and scope.is_set_expr(node.value))
                ):
                    scope.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and isinstance(node.op, _SET_BINOPS)
                    and scope.is_set_expr(node.value)
                ):
                    scope.add(node.target.id)

    def _walk_scope(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements, yielding nested scopes without descending into them."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_stmt(
        self, stmt: ast.stmt, scope: _Scope, path: str
    ) -> Iterator[Violation]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _Scope(scope)
            args = stmt.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            for param in params:
                if _annotation_is_set(param.annotation):
                    inner.add(param.arg)
            yield from self._check_scope(stmt.body, inner, path)
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._check_scope(stmt.body, _Scope(scope), path)
            return
        for node in self._walk_scope([stmt]):
            yield from self._check_node(node, scope, path)

    def _check_node(
        self, node: ast.AST, scope: _Scope, path: str
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A scope nested inside a compound statement (if/try/with body).
            yield from self._check_stmt(node, scope, path)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if scope.is_set_expr(node.iter):
                yield self._flag(node.iter, path)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if scope.is_set_expr(generator.iter):
                    yield self._flag(generator.iter, path)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ITERATING_CALLS
                and node.args
                and scope.is_set_expr(node.args[0])
            ):
                yield self._flag(node.args[0], path)

    def _flag(self, node: ast.expr, path: str) -> Violation:
        return self.violation(
            node,
            path,
            "iteration over an unordered set on a world-enumeration path; "
            "wrap in sorted() (or waive with a documented canonical order)",
        )
