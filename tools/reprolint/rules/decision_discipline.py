"""R004 — deciders return ``Decision`` and never swallow cancellation.

PR 4 rebuilt the public decision surface around
:class:`repro.decision.Decision`: a truthy/falsy verdict carrying stats,
witnesses and engine attribution.  A decider that returns a bare ``bool``
silently drops all of that, and callers (the :class:`repro.api.Database`
facade, benchmarks reading ``Decision.stats``) break in ways no test of the
*verdict* notices.  Similarly, ``SearchCancelledError`` is the parallel
engine's cancellation signal — an ``except`` that eats it turns "the caller
cancelled" into "the decider answered", an unsound verdict.

Inside ``src/repro/completeness/`` the rule flags:

* a module-level function that drives a
  :class:`~repro.decision.DecisionRecorder` but is not annotated
  ``-> Decision``;
* a *public* module-level function annotated ``-> bool`` (predicates that
  are genuinely world-level helpers carry a waiver saying so);
* an ``except`` handler that can catch ``SearchCancelledError`` (named
  directly, via ``Exception``/``BaseException``, or bare) without
  re-raising.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

_SWALLOWING_TYPES = frozenset({"SearchCancelledError", "Exception", "BaseException"})


def _handler_catches_cancellation(handler: ast.ExceptHandler) -> str | None:
    """The offending exception name if the handler can catch cancellation."""
    if handler.type is None:
        return "bare except"
    candidates: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        candidates = list(handler.type.elts)
    else:
        candidates = [handler.type]
    for candidate in candidates:
        name: str | None = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name in _SWALLOWING_TYPES:
            return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class DecisionDisciplineRule(Rule):
    code = "R004"
    name = "decider-decision-discipline"
    rationale = (
        "public decider entry points must return Decision (stats, witness "
        "and engine attribution travel with the verdict) and must let "
        "SearchCancelledError propagate"
    )
    fixture_path = "src/repro/completeness/example.py"

    must_flag = (
        # drives a recorder but is annotated -> bool
        "from repro.decision import DecisionRecorder\n"
        "def is_thing(cinstance) -> bool:\n"
        "    rec = DecisionRecorder('thing', None)\n"
        "    with rec:\n"
        "        holds = bool(cinstance)\n"
        "    return holds\n",
        # public entry point returning a bare bool\n
        "def is_complete(cinstance) -> bool:\n"
        "    return bool(cinstance)\n",
        # swallows cancellation
        "def sweep(worlds):\n"
        "    try:\n"
        "        return sum(1 for _ in worlds)\n"
        "    except SearchCancelledError:\n"
        "        return 0\n",
        # a broad except swallows cancellation too
        "def sweep(worlds):\n"
        "    try:\n"
        "        return sum(1 for _ in worlds)\n"
        "    except Exception:\n"
        "        return 0\n",
    )
    must_pass = (
        # the canonical recorder shape
        "from repro.decision import Decision, DecisionRecorder\n"
        "def is_thing(cinstance) -> Decision:\n"
        "    rec = DecisionRecorder('thing', None)\n"
        "    with rec:\n"
        "        holds = bool(cinstance)\n"
        "    return rec.decision(holds)\n",
        # private helpers may return bool
        "def _prune(row) -> bool:\n"
        "    return bool(row)\n",
        # specific non-cancellation exceptions are fine
        "def sweep(worlds):\n"
        "    try:\n"
        "        return sum(1 for _ in worlds)\n"
        "    except BoundExceededError:\n"
        "        return 0\n",
        # re-raising keeps cancellation flowing
        "def sweep(worlds, log):\n"
        "    try:\n"
        "        return sum(1 for _ in worlds)\n"
        "    except SearchCancelledError:\n"
        "        log.append('cancelled')\n"
        "        raise\n",
    )

    def applies_to(self, path: str) -> bool:
        return "src/repro/completeness/" in path

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(stmt, path)
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                caught = _handler_catches_cancellation(node)
                if caught is not None and not _reraises(node):
                    yield self.violation(
                        node,
                        path,
                        f"except handler ({caught}) swallows "
                        "SearchCancelledError; cancellation must propagate "
                        "(catch something narrower or re-raise)",
                    )

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, path: str
    ) -> Iterator[Violation]:
        returns = node.returns
        returns_decision = (
            isinstance(returns, ast.Name) and returns.id == "Decision"
        ) or (
            isinstance(returns, ast.Constant) and returns.value == "Decision"
        )
        uses_recorder = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "DecisionRecorder"
            for sub in ast.walk(node)
        )
        if uses_recorder and not returns_decision:
            yield self.violation(
                node,
                path,
                f"{node.name}() drives a DecisionRecorder but is not "
                "annotated -> Decision; deciders return rich Decision "
                "results, not bare values",
            )
            return
        is_public = not node.name.startswith("_")
        returns_bool = isinstance(returns, ast.Name) and returns.id == "bool"
        if is_public and returns_bool:
            yield self.violation(
                node,
                path,
                f"public completeness entry point {node.name}() returns a "
                "bare bool; return a Decision (or waive for genuine "
                "world-level predicates)",
            )
