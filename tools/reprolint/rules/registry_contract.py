"""R003 — deciders resolve engines through the registry, never directly.

PR 4's registry (:mod:`repro.search.registry`) made engines pluggable: an
``engine=`` keyword accepts a name / :class:`EngineConfig` and everything
downstream resolves it via ``get_engine``.  That contract dies quietly the
first time a decider imports ``WorldSearch`` or ``ParallelWorldSearch``
directly — the capability flags, the ambient checker channel and the
``Decision`` stats collection are all bypassed, and third-party engines stop
being drop-ins for that code path.

The rule bans, inside ``src/repro/completeness/``, any import of the
concrete engine modules (``repro.search.engine`` / ``naive`` /
``sat_engine`` / ``parallel``) and any reference to the engine class names.
``repro.search.registry`` (and the checker in ``repro.search.propagation``)
remain fair game — that is the supported surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

# repro.search.engine is NOT module-banned: it hosts neutral helpers
# (world_key) next to the WorldSearch class; the class-name check below
# still catches the class being imported or used from anywhere.
_BANNED_MODULES = frozenset(
    {
        "repro.search.naive",
        "repro.search.sat_engine",
        "repro.search.parallel",
    }
)
_BANNED_NAMES = frozenset(
    {"WorldSearch", "NaiveWorldSearch", "SATWorldSearch", "ParallelWorldSearch"}
)


@register_rule
class RegistryContractRule(Rule):
    code = "R003"
    name = "direct-engine-import-in-decider"
    rationale = (
        "completeness deciders must resolve engines via "
        "repro.search.registry.get_engine / EngineConfig so capability "
        "routing, ambient channels and third-party engines keep working"
    )
    fixture_path = "src/repro/completeness/example.py"

    must_flag = (
        "from repro.search.naive import NaiveWorldSearch\n",
        "from repro.search.engine import WorldSearch\n"
        "def decide(cinstance, master, constraints):\n"
        "    return WorldSearch(cinstance, master, constraints).has_world()\n",
        "import repro.search.parallel\n",
    )
    must_pass = (
        "from repro.search.registry import EngineConfig, get_engine\n"
        "def decide(engine):\n"
        "    return get_engine(EngineConfig.coerce(engine).name or 'propagating')\n",
        "from repro.search.propagation import ConstraintChecker\n",
        "from repro.search.engine import world_key\n",
        "from repro.ctables.possible_worlds import has_model, models\n",
    )

    def applies_to(self, path: str) -> bool:
        return "src/repro/completeness/" in path

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in _BANNED_MODULES:
                    yield self._flag(node, path, module)
                else:
                    for alias in node.names:
                        if alias.name in _BANNED_NAMES:
                            yield self._flag(node, path, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _BANNED_MODULES:
                        yield self._flag(node, path, alias.name)
            elif isinstance(node, ast.Name) and node.id in _BANNED_NAMES:
                if isinstance(node.ctx, ast.Load):
                    yield self._flag(node, path, node.id)

    def _flag(self, node: ast.AST, path: str, what: str) -> Violation:
        return self.violation(
            node,
            path,
            f"direct engine access ({what}) in a completeness decider; "
            "resolve engines via repro.search.registry.get_engine / "
            "EngineConfig instead",
        )
