"""R002 — ``CheckerSession.push()`` must unwind via ``finally`` (or ``with``).

The delta-evaluating :class:`repro.search.propagation.CheckerSession` keeps a
push/pop trail whose balance is the correctness contract of every search
built on it: a push left behind after an exception (``SearchCancelledError``
from a ``stop_check`` poll, ``GeneratorExit`` from an abandoned enumeration)
silently corrupts the fact store and the violation bookkeeping for whoever
touches the session next.

The rule therefore requires every ``*.push(...)`` call on a session-like
receiver to be lexically protected: inside the body of a ``try`` whose
``finally`` pops the *same* receiver (``.pop()`` / ``.pop_to(mark)``), or
inside a ``with`` block entered on that receiver.  A receiver is
session-like when its source text contains ``session`` (case-insensitive)
or when the name was bound from a ``.session(...)`` /
``CheckerSession(...)`` call.

Code whose pops live in the *caller* by design (e.g. a push helper that
callers unwind with ``pop_to`` against a pre-call mark) states that contract
with a waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

_POP_METHODS = frozenset({"pop", "pop_to", "pop_all"})

_TRY_NODES: tuple[type[ast.stmt], ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # pragma: no branch - py311+
    _TRY_NODES = (ast.Try, ast.TryStar)


def _is_session_binding_call(node: ast.expr) -> bool:
    """Whether ``node`` is a ``*.session(...)`` or ``CheckerSession(...)`` call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "session":
        return True
    if isinstance(func, ast.Name) and func.id == "CheckerSession":
        return True
    return False


class _ModuleState:
    """Per-module memory of names bound from session-producing calls."""

    def __init__(self, tree: ast.Module) -> None:
        self.session_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_session_binding_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.session_names.add(target.id)
            elif isinstance(node, ast.withitem) and _is_session_binding_call(
                node.context_expr
            ):
                if isinstance(node.optional_vars, ast.Name):
                    self.session_names.add(node.optional_vars.id)

    def is_session_receiver(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return "session" in node.id.lower() or node.id in self.session_names
        if isinstance(node, ast.Attribute):
            return "session" in node.attr.lower() or self.is_session_receiver(node.value)
        return False


@register_rule
class SessionBalanceRule(Rule):
    code = "R002"
    name = "unbalanced-session-push"
    rationale = (
        "CheckerSession push/pop must stay balanced across exceptions; a "
        "push needs a finally-pop on the same receiver or a with block"
    )
    fixture_path = "src/repro/search/example.py"

    must_flag = (
        # pop on the success path only: an exception leaks the push
        "def probe(checker, row):\n"
        "    session = checker.session()\n"
        "    session.push('R', row)\n"
        "    session.pop()\n",
        # finally pops a *different* receiver
        "def probe(session, other_session, row):\n"
        "    try:\n"
        "        session.push('R', row)\n"
        "    finally:\n"
        "        other_session.pop()\n",
    )
    must_pass = (
        # the canonical mark / finally-pop_to shape
        "def probe(checker, row):\n"
        "    session = checker.session()\n"
        "    mark = session.mark()\n"
        "    try:\n"
        "        session.push('R', row)\n"
        "    finally:\n"
        "        session.pop_to(mark)\n",
        # a context-managed session owns its own balance
        "def probe(checker, row):\n"
        "    with checker.session() as session:\n"
        "        session.push('R', row)\n",
        # pushes on non-session receivers (stacks, lists) are not our business
        "def collect(stack, row):\n"
        "    stack.push(row)\n",
    )

    def applies_to(self, path: str) -> bool:
        return "src/repro/" in path

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        state = _ModuleState(tree)
        yield from self._visit(tree.body, state, path, protected=frozenset())

    # ------------------------------------------------------------------
    def _visit(
        self,
        body: list[ast.stmt],
        state: _ModuleState,
        path: str,
        protected: frozenset[str],
    ) -> Iterator[Violation]:
        for stmt in body:
            yield from self._visit_stmt(stmt, state, path, protected)

    def _visit_stmt(
        self,
        stmt: ast.stmt,
        state: _ModuleState,
        path: str,
        protected: frozenset[str],
    ) -> Iterator[Violation]:
        if isinstance(stmt, _TRY_NODES):
            finally_pops = self._finally_pop_receivers(stmt.finalbody, state)
            inner = protected | finally_pops
            for part in (stmt.body, *[h.body for h in stmt.handlers], stmt.orelse):
                yield from self._visit(part, state, path, inner)
            yield from self._visit(stmt.finalbody, state, path, protected)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = set(protected)
            for item in stmt.items:
                if state.is_session_receiver(item.context_expr) or _is_session_binding_call(
                    item.context_expr
                ):
                    inner.add(ast.unparse(item.context_expr))
                    if isinstance(item.optional_vars, ast.Name):
                        inner.add(item.optional_vars.id)
            yield from self._visit(stmt.body, state, path, frozenset(inner))
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A new scope: finally/with protections do not cross it.
            yield from self._visit(stmt.body, state, path, frozenset())
            return
        # Check expression-level pushes in this statement (not nested scopes).
        for node in self._iter_statement_exprs(stmt):
            violation = self._check_push(node, state, path, protected)
            if violation is not None:
                yield violation
        # Recurse into compound-statement bodies (if/for/while/with arms).
        for child_body in self._child_bodies(stmt):
            yield from self._visit(child_body, state, path, protected)

    def _child_bodies(self, stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for field in ("body", "orelse"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                bodies.append(value)
        return bodies

    def _iter_statement_exprs(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        """Every call in ``stmt`` outside nested statements/scopes."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        stack: list[ast.AST] = []
        for field, value in ast.iter_fields(stmt):
            if field in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.AST))
            elif isinstance(value, ast.AST):
                stack.append(value)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _finally_pop_receivers(
        self, finalbody: list[ast.stmt], state: _ModuleState
    ) -> frozenset[str]:
        receivers: set[str] = set()
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _POP_METHODS
                    and state.is_session_receiver(node.func.value)
                ):
                    receivers.add(ast.unparse(node.func.value))
        return frozenset(receivers)

    def _check_push(
        self,
        node: ast.Call,
        state: _ModuleState,
        path: str,
        protected: frozenset[str],
    ) -> Violation | None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "push"):
            return None
        if not state.is_session_receiver(func.value):
            return None
        if ast.unparse(func.value) in protected:
            return None
        return self.violation(
            node,
            path,
            "CheckerSession.push() without a finally-pop on the same "
            "receiver (or a with block); an exception would leave the "
            "session unbalanced",
        )
