"""Built-in reprolint rules; importing this package registers them all."""

from tools.reprolint.rules import (  # noqa: F401  (imported for registration)
    decision_discipline,
    determinism,
    fork_safety,
    registry_contract,
    session_balance,
    stats_rebinding,
)
