"""R005 — pool workers must not capture module-level mutable state.

The parallel engine forks worker processes; anything a submitted callable
reads from module scope is a *fork-time snapshot* that silently diverges
from the parent (and from other workers) the moment either side mutates it.
A bound method or lambda additionally drags its ``self``/closure through
pickle — or refuses to pickle at all under the spawn start method.

For every call submitting work to an executor/pool (``submit``,
``apply_async``, ``map_async``, ``imap``, ``imap_unordered``, ``starmap``,
``starmap_async``, and ``map`` on receivers named like pools/executors), the
rule requires the callable to be a module-level function, then walks it —
and everything it calls in the same module — and flags:

* ``global`` statements (workers mutating module state);
* reads of module-level names that are mutable: bound to a ``list`` /
  ``dict`` / ``set`` literal or comprehension, rebound via ``global``
  anywhere in the module, or holding an ``open(...)`` handle.

State that is *deliberately* process-local (a per-worker memo cache, a
fork-inherited cancellation slot installed by the pool initializer) carries
a waiver explaining exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.core import Rule, Violation, register_rule

_SUBMIT_METHODS = frozenset(
    {"submit", "apply_async", "map_async", "imap", "imap_unordered", "starmap", "starmap_async"}
)
_POOLISH_HINTS = ("pool", "executor")
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _mutable_module_bindings(tree: ast.Module) -> set[str]:
    """Module-level names a forked worker must not rely on."""
    mutable: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("open", "set", "dict", "list", "bytearray")
        )
        if is_mutable:
            for target in targets:
                if isinstance(target, ast.Name):
                    mutable.add(target.id)
    # Names rebound via ``global`` anywhere are module-level mutable slots
    # even when their module-level binding looks inert (e.g. ``X = None``).
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            mutable.update(node.names)
    return mutable


@register_rule
class ForkSafetyRule(Rule):
    code = "R005"
    name = "fork-unsafe-worker"
    rationale = (
        "callables submitted to the process pool must be module-level "
        "functions free of module-level mutable state (fork-time snapshots "
        "diverge silently between parent and workers)"
    )
    fixture_path = "src/repro/search/example.py"

    must_flag = (
        # worker reads a module-level dict (fork-time snapshot)
        "_CACHE = {}\n"
        "def work(item):\n"
        "    return _CACHE.get(item)\n"
        "def run(executor, items):\n"
        "    return [executor.submit(work, item) for item in items]\n",
        # lambdas do not survive pickling / carry closures
        "def run(executor):\n"
        "    return executor.submit(lambda: 1)\n",
        # worker mutates module state via global (reached transitively)
        "_LAST = None\n"
        "def _remember(item):\n"
        "    global _LAST\n"
        "    _LAST = item\n"
        "def work(item):\n"
        "    _remember(item)\n"
        "    return item\n"
        "def run(pool, items):\n"
        "    return pool.map_async(work, items)\n",
    )
    must_pass = (
        # immutable module constants are fork-safe
        "STRIDE = 64\n"
        "def work(item):\n"
        "    return item * STRIDE\n"
        "def run(executor, items):\n"
        "    return [executor.submit(work, item) for item in items]\n",
        # builtin map on a non-pool receiver is not a submission
        "def run(items):\n"
        "    return list(map(str, items))\n",
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        functions = _module_functions(tree)
        mutable = _mutable_module_bindings(tree)
        flagged: set[tuple[str, str]] = set()
        for node in ast.walk(tree):
            callable_arg = self._submitted_callable(node)
            if callable_arg is None:
                continue
            if isinstance(callable_arg, ast.Lambda):
                yield self.violation(
                    callable_arg,
                    path,
                    "lambda submitted to a process pool; submit a "
                    "module-level function (lambdas pickle poorly and "
                    "capture closures)",
                )
                continue
            if isinstance(callable_arg, ast.Attribute):
                yield self.violation(
                    callable_arg,
                    path,
                    f"bound method/attribute {ast.unparse(callable_arg)!r} "
                    "submitted to a process pool; submit a module-level "
                    "function",
                )
                continue
            if not isinstance(callable_arg, ast.Name):
                continue
            entry = functions.get(callable_arg.id)
            if entry is None:
                # Imported or locally defined elsewhere; cross-module
                # analysis is out of scope for this rule.
                continue
            yield from self._check_worker(entry, functions, mutable, flagged, path)

    # ------------------------------------------------------------------
    def _submitted_callable(self, node: ast.AST) -> ast.expr | None:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return None
        attr = node.func.attr
        if attr in _SUBMIT_METHODS:
            return node.args[0] if node.args else None
        if attr == "map":
            # Only simple receivers count (``pool.map``, ``self._executor.map``)
            # so strategy/iterator ``.map`` chains never false-positive.
            receiver = node.func.value
            if isinstance(receiver, (ast.Name, ast.Attribute)):
                text = ast.unparse(receiver).lower()
                if any(hint in text for hint in _POOLISH_HINTS):
                    return node.args[0] if node.args else None
        return None

    def _check_worker(
        self,
        entry: ast.FunctionDef | ast.AsyncFunctionDef,
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        mutable: set[str],
        flagged: set[tuple[str, str]],
        path: str,
    ) -> Iterator[Violation]:
        """Flag fork hazards in ``entry`` and its same-module callees."""
        pending = [entry]
        visited: set[str] = set()
        while pending:
            function = pending.pop()
            if function.name in visited:
                continue
            visited.add(function.name)
            local_names = self._local_names(function)
            for node in ast.walk(function):
                if isinstance(node, ast.Global):
                    key = (function.name, ",".join(node.names))
                    if key not in flagged:
                        flagged.add(key)
                        yield self.violation(
                            node,
                            path,
                            f"worker {function.name}() mutates module-level "
                            f"state ({', '.join(node.names)}); fork-time "
                            "snapshots diverge between processes",
                        )
                elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    if node.id in mutable and node.id not in local_names:
                        key = (function.name, node.id)
                        if key not in flagged:
                            flagged.add(key)
                            yield self.violation(
                                node,
                                path,
                                f"worker {function.name}() reads module-level "
                                f"mutable state {node.id!r}; pass it through "
                                "the task payload instead",
                            )
                    elif node.id in functions and node.id not in visited:
                        pending.append(functions[node.id])

    def _local_names(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Names bound locally in ``function`` (params, assignments, loops)."""
        names: set[str] = set()
        args = function.args
        for arg in (
            args.posonlyargs
            + args.args
            + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
        for node in ast.walk(function):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not function:
                names.add(node.name)
        return names
    # Note: a name listed in a ``global`` statement is also "stored" locally
    # by the walk above, but the Global check already flagged the function,
    # so the read-side suppression does not hide anything new.
