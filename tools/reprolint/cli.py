"""Command-line front-end: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from tools.reprolint.core import Rule, all_rules, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST lints for repro-specific invariants: determinism of "
            "world-enumeration order, CheckerSession push/pop balance, "
            "engine-registry routing, Decision discipline, fork safety."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="CODE",
        help="run only the given rule code(s); may be repeated",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="report violations even where an inline waiver covers them",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _select_rules(codes: Sequence[str] | None) -> tuple[Rule, ...] | None:
    if not codes:
        return None
    by_code = {rule.code: rule for rule in all_rules()}
    unknown = [code for code in codes if code not in by_code]
    if unknown:
        raise SystemExit(
            f"reprolint: unknown rule code(s) {unknown}; "
            f"known: {sorted(by_code)}"
        )
    return tuple(by_code[code] for code in codes)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"      {rule.rationale}")
        return 0
    rules = _select_rules(args.rule)
    violations, files_checked = lint_paths(
        args.paths, rules, respect_waivers=not args.no_waivers
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violations": [v.to_json() for v in violations],
                    "rules": [
                        {"code": rule.code, "name": rule.name}
                        for rule in (rules or all_rules())
                    ],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.format())
        summary = (
            f"reprolint: {len(violations)} violation(s) "
            f"in {files_checked} file(s)"
        )
        print(summary if violations else f"reprolint: clean ({files_checked} files)")
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
