"""The ``reprolint`` framework: rules, registry, waivers, file runner.

``reprolint`` is an AST-based lint suite for invariants that are specific to
this repository and that no generic linter knows about — the guarantees the
Fan–Geerts deciders rest on:

* parallel shard enumeration stays order-identical to the serial engine,
  so world-enumeration paths must never iterate unordered sets (R001);
* ``CheckerSession`` push/pop stays balanced across exceptions (R002);
* deciders resolve engines through the registry, never by importing engine
  classes directly (R003);
* public decider entry points return :class:`repro.decision.Decision` and
  never swallow ``SearchCancelledError`` (R004);
* work submitted to the parallel process pool captures no module-level
  mutable state (R005);
* stats ledgers accumulate in place and are never rebound to another
  object's ``.stats`` outside ``__init__`` (R006).

A rule is a :class:`Rule` subclass registered with :func:`register_rule`.
Each rule carries its own *fixture snippets* (``must_flag`` / ``must_pass``)
which double as documentation and as the test corpus: the meta-test in
``tests/reprolint`` asserts every registered rule flags all of its
``must_flag`` snippets and none of its ``must_pass`` snippets.

Intentional violations are waived inline::

    for row in candidate_set:  # reprolint: disable=R001 -- membership order irrelevant here

A waiver comment covers its own line and the line directly below it (so a
standalone comment above the flagged statement also works).  Waivers naming
unknown rule codes are themselves reported (code ``R000``) so stale waivers
cannot rot silently.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Iterable, Iterator, Sequence

#: ``# reprolint: disable=R001`` or ``disable=R001,R005`` (optionally followed
#: by ``-- justification`` free text, which the parser ignores).
WAIVER_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Framework-level diagnostics (parse failures, malformed waivers).
FRAMEWORK_CODE = "R000"

#: Directory names never descended into when walking lint targets.
SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".hypothesis", ".pytest_cache", ".venv", "build", "dist"}
)


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes below and implement :meth:`check`.
    ``fixture_path`` is a representative path for which :meth:`applies_to`
    returns ``True``; the fixture tests lint the ``must_flag`` /
    ``must_pass`` snippets *as if* they lived at that path.
    """

    code: ClassVar[str]
    name: ClassVar[str]
    rationale: ClassVar[str]
    fixture_path: ClassVar[str]
    must_flag: ClassVar[tuple[str, ...]] = ()
    must_pass: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, path: str) -> bool:
        """Whether the rule checks files at ``path`` (posix-style)."""
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        """Yield the rule's violations for one parsed module."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type purposes

    def violation(self, node: ast.AST, path: str, message: str) -> Violation:
        """A :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.code,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (by ``code``)."""
    if cls.code in _RULES:
        raise ValueError(f"duplicate reprolint rule code {cls.code!r}")
    _RULES[cls.code] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by code."""
    _load_builtin_rules()
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code: str) -> Rule:
    """Look up one registered rule by its code."""
    _load_builtin_rules()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown reprolint rule {code!r}; known rules: {sorted(_RULES)}"
        ) from None


def _load_builtin_rules() -> None:
    # Imported lazily so `import tools.reprolint.core` never cycles with the
    # rule modules (which import this module for the base class).
    from tools.reprolint import rules  # noqa: F401


# ---------------------------------------------------------------------------
# waivers
# ---------------------------------------------------------------------------
def parse_waivers(source: str) -> dict[int, set[str]]:
    """Map line number → rule codes waived on that line.

    A trailing waiver comment covers its own line (and the line below, for
    multi-line statements).  A standalone comment waiver covers every
    following comment line plus the first code line after the comment block,
    so multi-line justifications work::

        # reprolint: disable=R001 -- first line of the justification,
        # which may continue over more comment lines.
        for row in candidate_set:
            ...
    """
    lines = source.splitlines()
    waived: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = WAIVER_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        covered = {lineno}
        if text.lstrip().startswith("#"):
            # Standalone comment: extend through the comment block to the
            # first code line below it.
            cursor = lineno + 1
            while cursor <= len(lines) and lines[cursor - 1].lstrip().startswith("#"):
                covered.add(cursor)
                cursor += 1
            covered.add(cursor)
        else:
            covered.add(lineno + 1)
        for line in covered:
            waived.setdefault(line, set()).update(codes)
    return waived


def _waiver_diagnostics(source: str, path: str) -> list[Violation]:
    """R000 findings for waivers naming rule codes that do not exist."""
    _load_builtin_rules()
    known = set(_RULES) | {"all"}
    findings: list[Violation] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = WAIVER_RE.search(text)
        if match is None:
            continue
        for code in (c.strip() for c in match.group(1).split(",")):
            if code and code not in known:
                findings.append(
                    Violation(
                        rule=FRAMEWORK_CODE,
                        path=path,
                        line=lineno,
                        col=match.start() + 1,
                        message=f"waiver names unknown rule code {code!r}",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------
def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] | None = None,
    *,
    respect_waivers: bool = True,
) -> list[Violation]:
    """Lint one module's source text as if it lived at ``path``."""
    selected = all_rules() if rules is None else tuple(rules)
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                rule=FRAMEWORK_CODE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    findings: list[Violation] = []
    for rule in selected:
        if rule.applies_to(posix):
            findings.extend(rule.check(tree, path))
    if respect_waivers:
        waived = parse_waivers(source)
        findings = [
            f
            for f in findings
            if not ({f.rule, "all"} & waived.get(f.line, set()))
        ]
        findings.extend(_waiver_diagnostics(source, path))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def iter_target_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """The ``.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for raw in paths:
        target = Path(raw)
        if target.is_dir():
            candidates = sorted(
                p
                for p in target.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        else:
            candidates = [target]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                collected.append(candidate)
    return iter(collected)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    respect_waivers: bool = True,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``."""
    findings: list[Violation] = []
    checked = 0
    for target in iter_target_files(paths):
        checked += 1
        findings.extend(
            lint_source(
                target.read_text(encoding="utf-8"),
                str(target),
                rules,
                respect_waivers=respect_waivers,
            )
        )
    return findings, checked
