"""Repo-local developer tooling (not part of the ``repro`` distribution)."""
