#!/usr/bin/env python3
"""Planning data collection with RCQP and MINP.

The paper motivates two practical questions beyond "is my database complete?":

* **RCQP** — can a complete database for my query exist at all, given the
  master data and the containment constraints?  (If not, no amount of data
  collection will ever make the answer trustworthy.)
* **MINP** — is my database a *minimal* complete one, i.e. am I storing more
  than I need to answer the query?

This example plays a data-collection planner for an e-commerce style
registry: a ``Record(key, value)`` store bounded by a master ``Registry``.
It decides, per query, whether a complete database exists, constructs a
weakly complete witness, and then trims a bloated database down to a minimal
complete one.

Run with:  python examples/data_collection_planning.py
"""

from repro.completeness import (
    CompletenessModel,
    construct_weakly_complete_witness,
    is_minimal_complete,
    is_relatively_complete,
    rcqp,
    weak_rcqp,
)
from repro.ctables.cinstance import CInstance
from repro.queries.atoms import atom, eq
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.instance import instance
from repro.workloads.generator import registry_workload


def main() -> None:
    workload = registry_workload(master_size=4, db_rows=3, variable_count=0)
    k, v = var("k"), var("v")

    queries = {
        "all registered records": workload.full_query,
        "the record for key k0": cq(
            "K0", [v], atoms=[atom("Record", k, v)], comparisons=[eq(k, "k0")]
        ),
        "records outside the registry's scope": cq(
            "Free", [v], atoms=[atom("Unbounded", k, v)]
        ),
    }

    print("=" * 72)
    print("Master registry (closed world) and containment constraints")
    print("=" * 72)
    for row in workload.master.relation("Registry"):
        print("  Registry", row)
    for constraint in workload.constraints:
        print(" ", constraint)

    # ------------------------------------------------------------------
    # RCQP: can a complete database exist at all?
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("RCQP — does a relatively complete database exist?")
    print("=" * 72)
    from repro.relational.schema import database_schema, schema as rel_schema

    extended_schema = database_schema(
        workload.schema["Record"], rel_schema("Unbounded", "key", "value")
    )
    for label, query in queries.items():
        print(f"\n  Query: {label}")
        print(f"    weak model  : {weak_rcqp(query)}  (always — Theorem 5.4)")
        answer = rcqp(
            query,
            extended_schema,
            workload.master,
            workload.constraints,
            model="strong",
            max_size=1,
        )
        print(f"    strong model: {answer}")

    # ------------------------------------------------------------------
    # Constructing a weakly complete database from nothing
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("Witness construction (Theorem 5.4 appendix proof)")
    print("=" * 72)
    witness = construct_weakly_complete_witness(
        workload.schema, workload.full_query, workload.master, workload.constraints
    )
    print("  A maximal partially closed instance that is weakly complete:")
    for row in witness["Record"]:
        print("    Record", row)

    # ------------------------------------------------------------------
    # MINP: trimming a bloated database
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("MINP — is the database minimal for the key-k0 query?")
    print("=" * 72)
    point_query = queries["the record for key k0"]
    bloated = instance(workload.schema, Record=[("k0", "v0"), ("k1", "v1"), ("k2", "v2")])
    trimmed = instance(workload.schema, Record=[("k0", "v0")])
    for label, db in (("bloated (3 rows)", bloated), ("trimmed (1 row)", trimmed)):
        complete = is_relatively_complete(
            db, point_query, workload.master, workload.constraints, CompletenessModel.STRONG
        )
        minimal = is_minimal_complete(
            CInstance.from_ground_instance(db),
            point_query,
            workload.master,
            workload.constraints,
            CompletenessModel.STRONG,
        )
        print(f"  {label:18s}  complete={complete}  minimal={minimal}")

    print()
    print("Take-away: the planner needs to collect exactly one tuple (the k0")
    print("record) to answer the point query with guaranteed completeness —")
    print("everything else in the bloated database is excess data.")


if __name__ == "__main__":
    main()
