#!/usr/bin/env python3
"""Quickstart: is my database complete for my query, relative to master data?

This walks through the paper's opening example (Example 1.1 / Figure 1)
using the ``Database`` facade — the stable 2.0 API:

1. a master registry of Edinburgh patients born in 2000 (closed world),
2. a visits database with *missing tuples* (it is open world outside the
   registry's scope) and *missing values* (a c-table with variables),
3. containment constraints tying the two together, and
4. the question: does the database have complete information for a query,
   even though data is missing?

Run with:  python examples/quickstart.py
"""

from repro import Database, EngineConfig
from repro.completeness import CompletenessModel
from repro.workloads import build_patient_scenario, display_figure1_cinstance


def main() -> None:
    scenario = build_patient_scenario()

    print("=" * 72)
    print("Master data (closed world: Edinburgh patients born in 2000)")
    print("=" * 72)
    for row in scenario.master.relation("Patientm"):
        print("  Patientm", row)

    print()
    print("=" * 72)
    print("The Figure 1 c-table (display version; x, z, w, u are missing values)")
    print("=" * 72)
    for row in display_figure1_cinstance()["MVisit"]:
        print(" ", row)

    print()
    print("=" * 72)
    print("Containment constraints (Example 2.1)")
    print("=" * 72)
    for constraint in scenario.constraints:
        print(" ", constraint)

    # One facade holds the whole analysis context: the c-instance, the
    # master data, the constraints, a cached Adom and a prebuilt constraint
    # checker shared by every call below.
    db = Database(scenario.figure1, scenario.master, scenario.constraints)

    print()
    print("=" * 72)
    print("Consistency: is the c-instance satisfiable at all?")
    print("=" * 72)
    consistency = db.is_consistent()
    print(f"  consistent: {consistency.holds}  (engine: {consistency.engine_used})")
    print(f"  one concrete possible world: {consistency.witness!r}")
    print(f"  distinct possible worlds over Adom: {db.count().value}")

    print()
    print("=" * 72)
    print("Relative completeness of the (analysis) c-instance")
    print("=" * 72)
    queries = {
        "Q1  (John's record)": scenario.q1,
        "Q4  (all Edinburgh-2000 patients)": scenario.q4,
        "Q3  (London patients — outside master scope)": scenario.q3,
    }
    for label, query in queries.items():
        print(f"\n  {label}: {query!r}")
        for model in (CompletenessModel.STRONG, CompletenessModel.WEAK, CompletenessModel.VIABLE):
            decision = db.complete(query, model)
            note = ""
            if model is CompletenessModel.STRONG and not decision:
                # Rich results: the strong decider hands back the
                # counterexample — a world plus the extension that changes
                # the query answer.
                ground = decision.witness.ground_witness
                added = ground.extension.size - ground.instance.size
                note = f"  (counterexample adds {added} tuple(s))"
            print(f"    {model.value:>7} completeness: {decision.holds}{note}")

    print()
    print("=" * 72)
    print("Engine selection through EngineConfig (same verdicts, any engine)")
    print("=" * 72)
    for config in ("propagating", EngineConfig(name="sat"), EngineConfig(name="parallel", workers=2)):
        decision = db.complete(scenario.q1, CompletenessModel.STRONG, engine=config)
        print(
            f"  engine={decision.engine_used:<12} strong(Q1)={decision.holds}  "
            f"wall={decision.stats.wall_time * 1e3:.1f}ms"
        )

    print()
    print("Reading the verdicts:")
    print("  * Q1 is strongly complete — no matter how the missing values are")
    print("    filled in, adding tuples cannot change John's record (the master")
    print("    data and the FD pin it down).")
    print("  * Q4 is weakly and viably complete but NOT strongly complete —")
    print("    exactly the situation of Example 2.3.")
    print("  * Q3 is neither strongly nor viably complete: master data says")
    print("    nothing about London, so new visits can always show up")
    print("    (Example 2.2).  It is trivially weakly complete only because no")
    print("    individual London visit is *certain* over all extensions — the")
    print("    certain answer stays empty on both sides of the definition.")


if __name__ == "__main__":
    main()
