#!/usr/bin/env python3
"""Data consistency meets relative completeness (Section 3).

The paper insists on databases that are both *relatively complete* and
*consistent*, and shows that the usual data-cleaning constraints — functional
dependencies, conditional functional dependencies and denial constraints —
can be expressed as containment constraints (CCs), so one constraint language
covers both concerns.  It also warns (Proposition 3.1) that adding inclusion
dependencies *on the database side* to the mix makes the completeness
problems undecidable, which is why the library encodes only master-bounded
INDs as CCs.

This example builds an employee/payroll database, states its cleaning rules
as classical dependencies, encodes them as CCs, and shows how

1. violations of the FD / CFD surface as consistency failures of c-instances,
2. the same CCs then drive the completeness analysis, and
3. FD implication (Armstrong closure) is available for reasoning about the
   rules themselves.

Run with:  python examples/data_cleaning_constraints.py
"""

from repro.completeness import is_consistent, is_relatively_complete, CompletenessModel
from repro.constraints import (
    cfd,
    cfd_as_ccs,
    fd,
    fd_as_ccs,
    fd_implies,
    ind,
    ind_to_master_as_cc,
    minimal_keys,
)
from repro.ctables.cinstance import cinstance
from repro.queries.atoms import atom
from repro.queries.cq import cq
from repro.queries.terms import var
from repro.relational.master import MasterData
from repro.relational.schema import database_schema, schema


def main() -> None:
    # ------------------------------------------------------------------
    # Schema, master data and cleaning rules
    # ------------------------------------------------------------------
    payroll = database_schema(schema("Emp", "eid", "name", "grade", "salary"))
    master = MasterData(
        database_schema(schema("Empm", "eid", "name")),
        {"Empm": [("e1", "Ada"), ("e2", "Grace"), ("e3", "Edsger")]},
    )

    fd_eid = fd("Emp", "eid", ["name", "salary"])
    fd_grade = fd("Emp", "grade", "salary")
    # CFD: grade G1 employees earn exactly 40000.
    cfd_g1 = cfd("Emp", ["grade"], ["salary"], pattern=("G1", 40000))

    print("=" * 72)
    print("Cleaning rules (classical dependencies)")
    print("=" * 72)
    print(" ", fd_eid)
    print(" ", fd_grade)
    print(" ", cfd_g1)

    # FD reasoning: eid is a key; grade alone is not.
    print("\n  FD implication (Armstrong closure):")
    print("    eid → salary implied?      ", fd_implies([fd_eid, fd_grade], fd("Emp", "eid", "salary")))
    print("    grade → name implied?      ", fd_implies([fd_eid, fd_grade], fd("Emp", "grade", "name")))
    keys = minimal_keys([fd_eid, fd_grade], payroll, "Emp")
    print("    minimal keys of Emp:       ", [sorted(key) for key in keys])

    # ------------------------------------------------------------------
    # Encode everything as containment constraints
    # ------------------------------------------------------------------
    constraints = []
    constraints += fd_as_ccs(fd_eid, payroll)
    constraints += cfd_as_ccs(cfd_g1, payroll)
    constraints.append(
        ind_to_master_as_cc(
            ind("Emp", ["eid", "name"], "Empm", ["eid", "name"]),
            payroll,
            master.schema,
        )
    )

    print()
    print("=" * 72)
    print("The same rules as containment constraints (Example 2.1 / Section 3)")
    print("=" * 72)
    for constraint in constraints:
        print(" ", constraint)

    # ------------------------------------------------------------------
    # Consistency of c-instances under the CCs
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("Consistency of databases with missing values")
    print("=" * 72)
    x, y = var("x"), var("y")

    # Ada's salary is missing; any value is fine as long as the FDs/CFD hold.
    repairable = cinstance(payroll, Emp=[("e1", "Ada", "G2", x)])
    # Two rows for e1 with different names violate the FD eid → name no matter
    # how the missing salaries are filled in.
    broken = cinstance(
        payroll,
        Emp=[("e1", "Ada", "G2", x), ("e1", "Adah", "G2", y)],
    )
    # A ground G1 row with the wrong salary violates the CFD outright.
    wrong_g1 = cinstance(payroll, Emp=[("e2", "Grace", "G1", 39000)])
    print("  missing salary only         → consistent?", is_consistent(repairable, master, constraints))
    print("  conflicting names for e1    → consistent?", is_consistent(broken, master, constraints))
    print("  ground G1 salary of 39000   → consistent?", is_consistent(wrong_g1, master, constraints))

    # ------------------------------------------------------------------
    # The cleaning constraints drive completeness too
    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("Completeness relative to the master data under the same CCs")
    print("=" * 72)
    na = var("na")
    q_ada = cq("QAda", [na], atoms=[atom("Emp", "e1", na, var("g"), var("s"))])
    verdict = is_relatively_complete(
        repairable, q_ada, master, constraints, CompletenessModel.STRONG
    )
    print("  'what is e1 called?' strongly complete on the 1-row db?", verdict)
    print("  (the FD eid → name plus the master bound pin the answer to Ada)")


if __name__ == "__main__":
    main()
