#!/usr/bin/env python3
"""A miniature, executable version of Table I.

The headline result of the paper is a complexity classification: for every
combination of decision problem (RCDP / RCQP / MINP), completeness model
(strong / weak / viable) and query language (CQ, UCQ, ∃FO⁺, FO, FP), Table I
states whether the problem is decidable and how hard it is.

This example regenerates the *operational shape* of that table on a small
workload:

* which cells the library decides exactly, which it refuses (undecidable
  cells), and which fall back to bounded heuristics;
* how the measured running time of the decidable cells grows when the number
  of missing values grows (the exponent of the theoretical bounds); and
* the O(1) weak-model RCQP cell, which stays flat.

Run with:  python examples/complexity_landscape.py
"""

import time

from repro.completeness import (
    CompletenessModel,
    is_minimal_complete,
    is_relatively_complete,
    weak_rcqp,
)
from repro.exceptions import QueryError
from repro.queries.fo import fo
from repro.queries.formulas import negate, rel
from repro.queries.terms import var
from repro.workloads.generator import chain_fp_query, registry_workload


def timed(callable_, *args, **kwargs):
    start = time.perf_counter()
    try:
        result = callable_(*args, **kwargs)
        status = str(result)
    except QueryError as error:
        status = "undecidable (refused)"
    elapsed = (time.perf_counter() - start) * 1000
    return status, elapsed


def main() -> None:
    workload = registry_workload(master_size=3, db_rows=2, variable_count=1)
    k, v = var("k"), var("v")
    fo_query = fo("NotRegistered", [k], rel("Record", k, v) & negate(rel("Record", k, "v0")))

    languages = {
        "CQ": workload.point_query,
        "UCQ": workload.union_query,
        "FP": chain_fp_query(),
        "FO": fo_query,
    }

    print("=" * 78)
    print("RCDP verdicts per language and model (exact cells decide, others refuse)")
    print("=" * 78)
    header = f"{'language':>9s} | " + " | ".join(f"{m.value:^22s}" for m in CompletenessModel)
    print(header)
    print("-" * len(header))
    for name, query in languages.items():
        cells = []
        for model in CompletenessModel:
            status, elapsed = timed(
                is_relatively_complete,
                workload.cinstance,
                query,
                workload.master,
                workload.constraints,
                model,
            )
            cells.append(f"{status:>14s} {elapsed:6.1f}ms")
        print(f"{name:>9s} | " + " | ".join(cells))

    print()
    print("=" * 78)
    print("MINP (strong model) and RCQP per language")
    print("=" * 78)
    for name, query in languages.items():
        minp_status, _ = timed(
            is_minimal_complete,
            workload.cinstance,
            query,
            workload.master,
            workload.constraints,
            CompletenessModel.STRONG,
        )
        try:
            rcqp_weak = str(weak_rcqp(query))
        except QueryError:
            rcqp_weak = "undecidable (refused)"
        print(f"  {name:>4s}:  MINP^s = {minp_status:<22s}  RCQP^w = {rcqp_weak}")

    print()
    print("=" * 78)
    print("Growth with the number of missing values (the exponent of Table I)")
    print("=" * 78)
    print(f"{'#variables':>11s} | {'RCDP^s (ms)':>12s} | {'RCDP^w (ms)':>12s} | {'RCQP^w (ms)':>12s}")
    for variable_count in (0, 1, 2, 3):
        sweep = registry_workload(master_size=3, db_rows=3, variable_count=variable_count)
        _, strong_ms = timed(
            is_relatively_complete,
            sweep.cinstance,
            sweep.point_query,
            sweep.master,
            sweep.constraints,
            CompletenessModel.STRONG,
        )
        _, weak_ms = timed(
            is_relatively_complete,
            sweep.cinstance,
            sweep.point_query,
            sweep.master,
            sweep.constraints,
            CompletenessModel.WEAK,
        )
        _, rcqp_ms = timed(weak_rcqp, sweep.point_query)
        print(f"{variable_count:>11d} | {strong_ms:>12.2f} | {weak_ms:>12.2f} | {rcqp_ms:>12.4f}")

    print()
    print("Reading the table: the strong/weak RCDP columns grow quickly with the")
    print("number of missing values (each variable multiplies the possible-world")
    print("space by |Adom|), while the weak-model RCQP column is constant — the")
    print("O(1) cell of Table I (Theorem 5.4).")


if __name__ == "__main__":
    main()
