#!/usr/bin/env python3
"""Smoke the real ``python -m repro.service`` subprocess lifecycle.

The e2e tests drive the service through :class:`ServiceThread` inside one
process; this script is the missing deployment-shaped check, used by
``scripts/check.sh`` and CI.  It spawns the actual CLI entrypoint on an
ephemeral port, parses the "listening on" line, and asserts over the wire:

* a repeated decision is a cache hit (``cache_hit`` flips false → true),
* N identical concurrent requests run exactly one engine search
  (``metrics.engine_runs`` advances by 1; the rest are deduplicated or
  cache hits),
* the NDJSON ``/worlds`` stream yields worlds and a summary,
* an update invalidates the scoped cache entries (consistency recomputes),
* SIGTERM produces a graceful drain: the process prints "stopped cleanly"
  and exits 0.

Run directly::

    python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402


def start_service() -> tuple[subprocess.Popen[str], str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}:{env.get('PYTHONPATH', '')}"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", "--executor", "thread"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    prefix = "repro.service listening on "
    if not line.startswith(prefix):
        process.kill()
        raise SystemExit(f"unexpected first line from the service: {line!r}")
    return process, line[len(prefix) :].strip()


def check_cache_and_singleflight(client: ServiceClient) -> None:
    client.create_session("demo", "patients")
    cold = client.decide("demo", "consistency")
    assert cold["result"]["holds"] is True, cold
    assert cold["cache_hit"] is False, cold
    warm = client.decide("demo", "consistency")
    assert warm["cache_hit"] is True, warm

    runs_before = client.metrics()["engine_runs"]
    barrier = threading.Barrier(6)
    envelopes: list[dict] = []

    def fire() -> None:
        barrier.wait()
        envelopes.append(
            client.decide("demo", "complete", query="q1", model="strong")
        )

    threads = [threading.Thread(target=fire) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert len(envelopes) == 6
    runs_after = client.metrics()["engine_runs"]
    assert runs_after - runs_before == 1, (
        f"single-flight failed: {runs_after - runs_before} engine runs "
        "for 6 identical concurrent requests"
    )


def check_streaming(client: ServiceClient) -> None:
    client.create_session("big", "wide", params={"rows": 3, "values_per_key": 4})
    with client.stream_worlds("big", limit=5) as stream:
        worlds = list(stream)
    assert len(worlds) == 5, f"expected 5 worlds, got {len(worlds)}"
    assert stream.summary is not None and stream.summary["kind"] == "summary"


def check_update_invalidation(client: ServiceClient) -> None:
    client.update(
        "demo", add_rows={"MVisit": [["915-15-400", "Ann", "EDI", 2001]]}
    )
    after = client.decide("demo", "consistency")
    assert after["cache_hit"] is False, "update did not invalidate consistency"
    assert after["result"]["holds"] is True, after


def main() -> int:
    process, base_url = start_service()
    try:
        client = ServiceClient(base_url)
        assert client.healthz()["status"] == "ok"
        check_cache_and_singleflight(client)
        check_streaming(client)
        check_update_invalidation(client)
    except BaseException:
        process.kill()
        process.wait(timeout=30)
        raise
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=60)
    if process.returncode != 0:
        print(output)
        print(f"service exited {process.returncode}, expected 0")
        return 1
    if "stopped cleanly" not in output:
        print(output)
        print("service did not report a clean drain-then-stop")
        return 1
    print("service_smoke: cache hit, single-flight collapse, streaming, "
          "update invalidation and SIGTERM drain all ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
