#!/usr/bin/env python
"""Seeded differential fuzz campaign over the world-search engines.

Drives the reusable four-way harness (``tests/search/harness.py``) with
randomly parameterised workloads, in two campaign families:

* **static** — a generated c-instance is run through every engine via
  :func:`harness.assert_engine_parity` (world sets, multisets,
  ``(valuation, world)`` pairs, counts, existence, parallel-vs-serial order
  identity), plus a periodic :func:`harness.assert_workers_independent`
  sweep over worker counts and shard orders;
* **stream** — a random ground add/drop script is applied step-by-step via
  :meth:`repro.api.Database.update` and checked against a
  rebuilt-from-scratch facade at every step through
  :func:`harness.assert_update_stream_parity` (the update-vs-rebuild
  differential of this PR), violations included;
* **components** — a randomly sized disconnected-components workload is
  counted three ways (blocking-clause SAT enumeration, component-caching
  SAT counting with and without CEGAR lazy clauses, and the propagating
  engine) and every answer is checked against the closed-form
  ``values ** (row_width * components)`` world count.

Every case is reproduced by its printed seed::

    python scripts/fuzz_differential.py --replay 1234

The campaign is budgeted by wall-clock (``--seconds``, default 300;
``scripts/check.sh`` runs a 60-second smoke slice) or by case count
(``--cases``).  Failing seeds are appended to a JSON report (``--out``,
default ``FUZZ_FAILURES.json``) that the nightly CI job uploads as an
artifact; the exit status is the number of failing cases (capped at 99).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time
import traceback

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests" / "search"))

from harness import (  # noqa: E402  (path set up above)
    assert_engine_parity,
    assert_update_stream_parity,
    assert_workers_independent,
)
from repro.search.engine import WorldSearch  # noqa: E402
from repro.search.sat_engine import SATWorldSearch  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    disconnected_components_workload,
    registry_workload,
    update_stream_workload,
)


def run_static_case(seed: int) -> str:
    """One four-way static-parity case; returns a human-readable label."""
    rng = random.Random(f"fuzz-static:{seed}")
    params = dict(
        master_size=rng.randint(2, 5),
        db_rows=rng.randint(1, 3),
        variable_count=rng.randint(0, 2),
        with_fd=rng.random() < 0.7,
        seed=seed,
    )
    workload = registry_workload(**params)
    assert_engine_parity(workload.cinstance, workload.master, workload.constraints)
    if seed % 7 == 0:
        # Periodically also sweep worker counts and shard orders through the
        # forced process-pool path (expensive: forks real processes).
        assert_workers_independent(
            workload.cinstance, workload.master, workload.constraints
        )
    return f"static {params}"


def run_stream_case(seed: int) -> str:
    """One update-vs-rebuild stream case; returns a human-readable label."""
    rng = random.Random(f"fuzz-stream:{seed}")
    params = dict(
        steps=rng.randint(3, 10),
        master_size=rng.randint(2, 4),
        db_rows=rng.randint(1, 3),
        variable_count=rng.randint(0, 2),
        with_fd=rng.random() < 0.7,
        include_violations=rng.random() < 0.5,
        seed=seed,
    )
    workload = update_stream_workload(**params)
    assert_update_stream_parity(
        workload.base.cinstance,
        workload.base.master,
        workload.base.constraints,
        workload.script,
        # The forced-fork spot checks dominate small-case runtime; sample them.
        fork_check=(seed % 5 == 0),
    )
    return f"stream {params}"


def run_components_case(seed: int) -> str:
    """One disconnected-components counting case across SAT counting modes."""
    rng = random.Random(f"fuzz-components:{seed}")
    params = dict(
        components=rng.randint(1, 3),
        rows_per_component=rng.randint(1, 3),
        values=rng.randint(2, 4),
        row_width=rng.randint(1, 2),
    )
    workload = disconnected_components_workload(**params)
    args = (workload.cinstance, workload.master, workload.constraints)
    expected = workload.world_count
    counts = {
        "sat-enumeration": SATWorldSearch(*args).count_worlds(),
        "sat-components": SATWorldSearch(
            *args, component_counting=True
        ).count_worlds(),
        "sat-components+cegar": SATWorldSearch(
            *args, component_counting=True, cegar=True
        ).count_worlds(),
        "propagating": WorldSearch(*args).count_worlds(),
    }
    mismatched = {
        label: count for label, count in counts.items() if count != expected
    }
    if mismatched:
        raise AssertionError(
            f"count mismatch vs closed form {expected}: {mismatched} ({params})"
        )
    return f"components {params}"


CASE_FAMILIES = (
    ("static", run_static_case),
    ("stream", run_stream_case),
    ("components", run_components_case),
)


def run_case(seed: int) -> str:
    family, runner = CASE_FAMILIES[seed % len(CASE_FAMILIES)]
    del family
    return runner(seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds",
        type=float,
        default=300.0,
        help="wall-clock budget for the campaign (default: 300)",
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=None,
        help="stop after this many cases regardless of the time budget",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first case seed; cases use seed, seed+1, ... (default: 0)",
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="run exactly one case with this seed and exit",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("FUZZ_FAILURES.json"),
        help="JSON report of failing seeds (default: FUZZ_FAILURES.json)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="continue the campaign past failures instead of stopping at 5",
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        label = run_case(args.replay)
        print(f"seed {args.replay}: OK ({label})")
        return 0

    deadline = time.monotonic() + args.seconds
    failures: list[dict] = []
    cases = 0
    seed = args.seed
    while time.monotonic() < deadline:
        if args.cases is not None and cases >= args.cases:
            break
        try:
            label = run_case(seed)
        except Exception:
            failures.append(
                {
                    "seed": seed,
                    "replay": f"python scripts/fuzz_differential.py --replay {seed}",
                    "traceback": traceback.format_exc(),
                }
            )
            print(f"seed {seed}: FAILED", file=sys.stderr)
            if not args.keep_going and len(failures) >= 5:
                break
        else:
            if cases % 25 == 0:
                print(f"seed {seed}: OK ({label})")
        cases += 1
        seed += 1

    print(f"ran {cases} cases, {len(failures)} failed")
    if failures:
        args.out.write_text(json.dumps(failures, indent=2) + "\n")
        print(f"failing seeds written to {args.out}", file=sys.stderr)
    return min(len(failures), 99)


if __name__ == "__main__":
    raise SystemExit(main())
