#!/usr/bin/env bash
# One-invocation correctness + speed gate.
#
# Runs the tier-1 test suite (includes the engine-parity tests) followed by
# the engine smoke benchmark, so a regression in either correctness or the
# pruned search's speed fails a single command:
#
#     scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo
echo "== engine smoke benchmark (parity + speedup) =="
python benchmarks/bench_engine.py --smoke

echo
echo "check.sh: all gates passed"
