#!/usr/bin/env bash
# One-invocation correctness + quality + speed gate.
#
# Runs, in order:
#   1. ruff lint (skipped with a warning if ruff is not installed),
#   2. static analysis: `mypy` under the strict profile of [tool.mypy] in
#      pyproject.toml (skipped with a warning if mypy is not installed) and
#      the reprolint AST invariant suite (pure stdlib, never skipped):
#      determinism of world-enumeration order, CheckerSession push/pop
#      balance, registry routing, Decision discipline, fork safety,
#   3. the public-API stability check (tests/api/test_public_surface.py):
#      repro.__all__, the Database facade signatures, the Decision /
#      EngineConfig field lists and the built-in engine set must match the
#      reviewed snapshot (regenerate deliberately with
#      scripts/update_api_snapshot.py),
#   4. the tier-1 test suite (includes the four-way engine-parity tests, the
#      extension-search parity suite and the facade-vs-functional parity
#      suite), with `-p no:cacheprovider` so runs are stateless, and with
#      coverage (`--cov=repro --cov-fail-under=$COV_FAIL_UNDER`) when
#      pytest-cov is installed, so a PR cannot silently drop tested lines,
#   5. the delta-vs-full checker differential suite (the tests carrying the
#      `delta_differential` marker) as its own loudly-labelled step, so a
#      semantics drift between the incremental and the recompute-from-scratch
#      constraint checkers fails CI with an unambiguous banner even though
#      the same tests also run inside the tier-1 suite,
#   6. a 60-second smoke slice of the differential fuzz campaign
#      (scripts/fuzz_differential.py, fixed seed): random four-way
#      engine-parity cases interleaved with update-vs-rebuild streams
#      through Database.update; the nightly CI job runs the same script for
#      15 minutes with a rotating seed and uploads failing seeds,
#   7. the doc-snippet runner (scripts/run_doc_snippets.py): every fenced
#      `python` block in README.md and docs/*.md is executed, so the
#      documentation code cannot rot (tag a fence `python no-run` to skip),
#   8. the service smoke (scripts/service_smoke.py): boots the real
#      `python -m repro.service` subprocess on an ephemeral port and asserts
#      cache hits, single-flight collapse, NDJSON streaming, update
#      invalidation and a clean SIGTERM drain over real sockets,
#   9. the engine smoke benchmark (four-way parity + the propagating-vs-naive,
#      SAT-vs-propagating, parallel-vs-propagating, indexed-delta-vs-full and
#      indexed-vs-linear-delta checker perf gates; the parallel gate needs
#      >= 4 host CPUs and reports itself as skipped on smaller machines),
#      writing machine-readable results to BENCH_ENGINE.json,
#  10. the service smoke benchmark (benchmarks/bench_service.py --smoke):
#      warm-cache speedup, single-flight engine-run count, first-world
#      streaming latency and warm-service-vs-cold-rebuild gates, writing
#      BENCH_SERVICE.json,
# so a regression in lint, API surface, correctness, coverage, engine
# speed or the decision service fails one command:
#
#     scripts/check.sh
#
# CI (.github/workflows/ci.yml) runs exactly this script and uploads
# BENCH_ENGINE.json + BENCH_SERVICE.json as the perf-trajectory artifacts;
# a dedicated CI job repeats the suite under pytest-cov.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Set just below the measured line coverage of the seed of this PR, so
# future PRs can lower it only deliberately (override via env if a PR
# legitimately shifts the base).  Raised 90 -> 91 when the delta-checker and
# extension-routing modules landed with their differential suites.
COV_FAIL_UNDER="${COV_FAIL_UNDER:-91}"

echo "== lint: ruff =="
if [ "${SKIP_LINT:-}" = "1" ]; then
    echo "SKIP_LINT=1; skipping lint (CI runs it once in the dedicated lint job)"
elif command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples
elif python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks examples
else
    echo "ruff not installed; skipping lint (CI runs it in the lint job)"
fi

echo
echo "== static analysis: mypy (strict profile) =="
if [ "${SKIP_MYPY:-}" = "1" ]; then
    echo "SKIP_MYPY=1; skipping mypy (CI runs it in the static-analysis job)"
elif command -v mypy >/dev/null 2>&1; then
    mypy
elif python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy
else
    echo "mypy not installed; skipping (CI runs it in the static-analysis job)"
fi

echo
echo "== static analysis: reprolint (repo-invariant AST lints) =="
# Pure stdlib — always runs.  PYTHONPATH already carries src; the repo root
# is needed so the tools/ package resolves.
PYTHONPATH=".:${PYTHONPATH}" python -m tools.reprolint src tests benchmarks

echo
echo "== public API surface (snapshot gate) =="
python -m pytest -q -p no:cacheprovider tests/api/test_public_surface.py

echo
echo "== tier-1: pytest =="
COV_ARGS=()
if [ "${SKIP_COV:-}" = "1" ]; then
    echo "SKIP_COV=1; skipping the coverage floor (CI enforces it in the" \
         "dedicated coverage job)"
elif python -c "import pytest_cov" >/dev/null 2>&1; then
    COV_ARGS=(--cov=repro --cov-report=term --cov-fail-under="$COV_FAIL_UNDER")
else
    echo "pytest-cov not installed; running without the coverage floor" \
         "(CI enforces it in the coverage job)"
fi
python -m pytest -x -q -p no:cacheprovider "${COV_ARGS[@]}"

echo
echo "== delta-vs-full checker differential suite (semantics gate) =="
python -m pytest -q -p no:cacheprovider -m delta_differential

echo
echo "== differential fuzz (smoke slice of the nightly campaign) =="
# The nightly CI job runs scripts/fuzz_differential.py for 15 minutes with a
# rotating seed; this slice keeps the harness itself honest on every run.
# Override the budget with FUZZ_SECONDS (0 skips the slice entirely).
FUZZ_SECONDS="${FUZZ_SECONDS:-60}"
if [ "$FUZZ_SECONDS" = "0" ]; then
    echo "FUZZ_SECONDS=0; skipping the fuzz smoke slice"
else
    python scripts/fuzz_differential.py --seconds "$FUZZ_SECONDS" --seed 0
fi

echo
echo "== doc snippets (README.md + docs/*.md) =="
python scripts/run_doc_snippets.py

echo
echo "== service smoke (python -m repro.service subprocess lifecycle) =="
python scripts/service_smoke.py

echo
echo "== engine smoke benchmark (four-way parity + speedup gates) =="
python benchmarks/bench_engine.py --smoke --json BENCH_ENGINE.json

echo
echo "== service smoke benchmark (cache + single-flight + streaming gates) =="
python benchmarks/bench_service.py --smoke --json BENCH_SERVICE.json

echo
echo "check.sh: all gates passed"
