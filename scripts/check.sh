#!/usr/bin/env bash
# One-invocation correctness + quality + speed gate.
#
# Runs, in order:
#   1. ruff lint (skipped with a warning if ruff is not installed),
#   2. the tier-1 test suite (includes the three-way engine-parity tests),
#   3. the engine smoke benchmark (parity + the propagating-vs-naive and
#      SAT-vs-propagating perf gates), writing machine-readable results to
#      BENCH_ENGINE.json,
# so a regression in lint, correctness or engine speed fails one command:
#
#     scripts/check.sh
#
# CI (.github/workflows/ci.yml) runs exactly this script and uploads
# BENCH_ENGINE.json as the perf-trajectory artifact.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint: ruff =="
if [ "${SKIP_LINT:-}" = "1" ]; then
    echo "SKIP_LINT=1; skipping lint (CI runs it once in the dedicated lint job)"
elif command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples
elif python -m ruff --version >/dev/null 2>&1; then
    python -m ruff check src tests benchmarks examples
else
    echo "ruff not installed; skipping lint (CI runs it in the lint job)"
fi

echo
echo "== tier-1: pytest =="
python -m pytest -x -q

echo
echo "== engine smoke benchmark (parity + speedup gates) =="
python benchmarks/bench_engine.py --smoke --json BENCH_ENGINE.json

echo
echo "check.sh: all gates passed"
