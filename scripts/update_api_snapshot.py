#!/usr/bin/env python3
"""Regenerate tests/api/public_api_snapshot.json from the live library.

Run after a *deliberate* public-API change, then review the snapshot diff in
code review like any other change:

    python scripts/update_api_snapshot.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests" / "api"))

from surface import build_surface  # noqa: E402


def main() -> int:
    snapshot_path = ROOT / "tests" / "api" / "public_api_snapshot.json"
    snapshot_path.write_text(
        json.dumps(build_surface(), indent=2, sort_keys=False) + "\n"
    )
    print(f"wrote {snapshot_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
