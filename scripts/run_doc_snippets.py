#!/usr/bin/env python3
"""Execute every fenced ``python`` code block in README.md and docs/*.md.

Documentation code rots silently; this runner makes the docs part of the
test surface.  The convention:

* a fence opened with exactly ```` ```python ```` is **executed**;
* a fence opened with ```` ```python no-run ```` (or any other extra token)
  is rendered with Python highlighting on GitHub but skipped here — for
  fragments that are deliberately not self-contained (e.g. an inline
  excerpt of repository source);
* all other fences (```` ```bash ````, plain ```` ``` ````, …) are ignored.

Blocks from the same file share one namespace, executed top to bottom, so a
page can build on its earlier snippets.  Each file starts fresh.  Snippets
run with the repository root as the working directory and ``src/`` on
``sys.path`` — the same environment as ``PYTHONPATH=src python``.

Run directly (used by ``scripts/check.sh`` and CI)::

    python scripts/run_doc_snippets.py            # README.md + docs/*.md
    python scripts/run_doc_snippets.py docs/engines.md   # explicit files
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


@dataclass
class Snippet:
    """One runnable fenced block: its source plus where it came from."""

    path: Path
    line: int  # 1-based line of the opening fence
    source: str


def extract_snippets(path: Path) -> list[Snippet]:
    """The runnable ``python`` fences of one markdown file, in order."""
    snippets: list[Snippet] = []
    fence_line = 0
    collecting = False
    runnable = False
    lines: list[str] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.strip()
        if not collecting:
            if stripped.startswith("```"):
                collecting = True
                fence_line = number
                runnable = stripped[3:].strip() == "python"
                lines = []
            continue
        if stripped.startswith("```"):
            if runnable:
                snippets.append(Snippet(path, fence_line, "\n".join(lines)))
            collecting = False
            continue
        lines.append(raw)
    return snippets


def run_file(path: Path) -> list[tuple[Snippet, str]]:
    """Execute a file's snippets in one shared namespace; return failures."""
    failures: list[tuple[Snippet, str]] = []
    namespace: dict[str, object] = {"__name__": f"doc_snippet:{path.name}"}
    for snippet in extract_snippets(path):
        # Pad with blank lines so tracebacks point at the markdown line.
        padded = "\n" * snippet.line + snippet.source
        try:
            exec(compile(padded, str(path), "exec"), namespace)  # noqa: S102
        except Exception:
            failures.append((snippet, traceback.format_exc()))
            break  # later snippets in the file may depend on this one
    return failures


def main(arguments: list[str]) -> int:
    if arguments:
        paths = [REPO_ROOT / argument for argument in arguments]
    else:
        paths = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    total = 0
    failures: list[tuple[Snippet, str]] = []
    for path in paths:
        snippets = extract_snippets(path)
        total += len(snippets)
        file_failures = run_file(path)
        failures.extend(file_failures)
        status = "FAIL" if file_failures else "ok"
        print(
            f"{path.relative_to(REPO_ROOT)}: {len(snippets)} snippet(s) {status}"
        )
    for snippet, trace in failures:
        location = f"{snippet.path.relative_to(REPO_ROOT)}:{snippet.line}"
        print(f"\nFAILED snippet at {location}:\n{trace}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} of {total} doc snippet(s) failed", file=sys.stderr)
        return 1
    print(f"All {total} doc snippet(s) passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
